"""Theoretical latency/bandwidth cost model (paper §3.3, Eqs. 1–3).

The paper models one message exchange as ``alpha + n*beta`` (latency +
per-byte cost) and derives per-rank communication times for its two
non-uniform algorithms, assuming block sizes uniformly distributed in
``[0, N]`` (average ``N/2``):

* **Padded Bruck** (Eq. 1) — one message per step, every block padded to
  ``N``::

      T_padded = alpha*log2(P) + beta*log2(P)*((P+1)/2)*N

* **Two-phase Bruck** (Eq. 2) — two messages per step (metadata of
  ``(P+1)/2`` 4-byte sizes, then data averaging ``N/2`` per block)::

      T_twophase = 2*alpha*log2(P) + 4*beta*log2(P)*(P+1)/2
                   + (N/2)*beta*log2(P)*(P+1)/2

* **Crossover** (Eq. 3) — padded beats two-phase iff::

      (N - 8)*(P + 1)*beta < 4*alpha

  which always holds for ``N < 8`` bytes and otherwise only when latency
  (``alpha``) dominates.

These closed forms intentionally mirror the paper's simplifications (no
congestion, no per-message CPU overhead, ``log P`` for ``log2 P``); the
*measured* counterparts live in :mod:`repro.timing`.  The functions accept
either explicit ``alpha``/``beta`` or a
:class:`~repro.simmpi.machine.MachineProfile`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from ..simmpi.machine import MachineProfile
from .common import validate_radix

__all__ = [
    "LinearCostParams",
    "padded_bruck_time",
    "two_phase_bruck_time",
    "spread_out_time",
    "padded_beats_two_phase",
    "crossover_block_size",
    "radix_cost",
    "best_radix",
    "DEFAULT_RADICES",
]

_META_ENTRY_BYTES = 4.0  # the paper charges 4 bytes per metadata entry


@dataclass(frozen=True)
class LinearCostParams:
    """The ``alpha + n*beta`` parameters of the paper's model."""

    alpha: float
    beta: float

    @classmethod
    def from_machine(cls, machine: MachineProfile,
                     nprocs: Optional[int] = None) -> "LinearCostParams":
        """Collapse a full profile into the paper's two-parameter model.

        The per-message CPU overheads fold into ``alpha`` (they are paid
        once per message, like latency); congestion folds into ``beta``
        when ``nprocs`` is given.
        """
        alpha = machine.alpha + machine.o_send + machine.o_recv
        beta = machine.beta_eff(nprocs) if nprocs else machine.beta
        return cls(alpha=alpha, beta=beta)


def _params(model: Union[LinearCostParams, MachineProfile],
            nprocs: int) -> LinearCostParams:
    if isinstance(model, MachineProfile):
        return LinearCostParams.from_machine(model, nprocs)
    return model


def _log2(nprocs: int) -> float:
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    return math.log2(nprocs) if nprocs > 1 else 0.0


def _radix_factors(nprocs: int, radix: int) -> Tuple[float, float, float]:
    """The radix-``r`` generalization's three continuous factors.

    Returns ``(lg, msgs, frac)`` where ``lg = log_r(P)`` is the step
    count, ``msgs = (r-1) * lg`` the message count, and
    ``frac = (P+1)(r-1)/r`` the per-step forwarded-block count — the
    generalization of the paper's ``(P+1)/2``.  Radix 2 reproduces the
    Eq. (1)/(2) factors bit-for-bit (``msgs == lg``,
    ``frac == (P+1)/2``).
    """
    r = validate_radix(radix)
    if r == 2:
        lg = _log2(nprocs)
    else:
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        lg = math.log(nprocs, r) if nprocs > 1 else 0.0
    msgs = (r - 1.0) * lg
    frac = (nprocs + 1) * (r - 1) / float(r)
    return lg, msgs, frac


def padded_bruck_time(nprocs: int, max_block: float,
                      model: Union[LinearCostParams, MachineProfile],
                      radix: int = 2) -> float:
    """Eq. (1), radix-generalized: per-rank time of padded Bruck (s).

    ``(r-1) * log_r(P)`` messages, each step forwarding
    ``(P+1)(r-1)/r`` blocks padded to ``max_block``; radix 2 is the
    paper's ``alpha*log2(P) + beta*log2(P)*((P+1)/2)*N`` exactly.
    """
    prm = _params(model, nprocs)
    lg, msgs, frac = _radix_factors(nprocs, radix)
    return prm.alpha * msgs + prm.beta * lg * frac * max_block


def two_phase_bruck_time(nprocs: int, max_block: float,
                         model: Union[LinearCostParams, MachineProfile],
                         radix: int = 2) -> float:
    """Eq. (2), radix-generalized: per-rank time of two-phase Bruck (s).

    Assumes the paper's uniform-distribution workload (average block size
    ``max_block / 2``).  Each of the ``(r-1) * log_r(P)`` rounds pays the
    coupled metadata + data latency pair; metadata and data volumes scale
    with the forwarded-block count ``log_r(P) * (P+1)(r-1)/r``.
    """
    prm = _params(model, nprocs)
    lg, msgs, frac = _radix_factors(nprocs, radix)
    return (2.0 * prm.alpha * msgs
            + _META_ENTRY_BYTES * prm.beta * lg * frac
            + (max_block / 2.0) * prm.beta * lg * frac)


def spread_out_time(nprocs: int, max_block: float,
                    model: Union[LinearCostParams, MachineProfile]) -> float:
    """Per-rank time of the spread-out baseline under the same model.

    Not one of the paper's numbered equations, but needed to reason about
    the Fig. 9 parameter space: ``P - 1`` messages, total volume
    ``P * N/2`` bytes on average.
    """
    prm = _params(model, nprocs)
    return (prm.alpha * max(nprocs - 1, 0)
            + prm.beta * nprocs * (max_block / 2.0))


def padded_beats_two_phase(nprocs: int, max_block: float,
                           model: Union[LinearCostParams, MachineProfile]) -> bool:
    """Eq. (3): does padded Bruck beat two-phase Bruck?

    ``(N - 8) * (P + 1) * beta < 4 * alpha`` — true whenever ``N < 8``
    bytes, else only in strongly latency-bound regimes.
    """
    prm = _params(model, nprocs)
    return (max_block - 2 * _META_ENTRY_BYTES) * (nprocs + 1) * prm.beta \
        < 4.0 * prm.alpha


def crossover_block_size(nprocs: int,
                         model: Union[LinearCostParams, MachineProfile]) -> float:
    """The ``N`` at which Eq. (3) flips: padded wins below, two-phase above.

    Derived by solving Eq. (3) for ``N``::

        N* = 8 + 4*alpha / ((P + 1) * beta)
    """
    prm = _params(model, nprocs)
    if prm.beta == 0:
        return math.inf
    return 2 * _META_ENTRY_BYTES + 4.0 * prm.alpha / ((nprocs + 1) * prm.beta)


# ----------------------------------------------------------------------
# radix selection
# ----------------------------------------------------------------------

#: Candidate radices evaluated by :func:`best_radix`: powers of two up to
#: 64.  Beyond r = P the schedule degenerates to one spread-out round, so
#: candidates above P are dropped per call.
DEFAULT_RADICES: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)

#: Algorithms whose radix cost is the one-message-per-round Eq. (1) shape
#: (padded volume for the non-uniform pad path, full blocks for uniform).
_EQ1_SHAPED = ("padded_bruck", "modified_bruck", "modified_bruck_dt",
               "zero_rotation_bruck")


def radix_cost(algorithm: str, nprocs: int, max_block: float,
               model: Union[LinearCostParams, MachineProfile],
               radix: int = 2) -> float:
    """Closed-form per-rank time of a radix-capable algorithm at ``radix``.

    Uniform Bruck variants share Eq. (1)'s one-message-per-round shape
    (every forwarded block carries ``max_block`` bytes); ``padded_bruck``
    is exactly that over the padded buffer; ``two_phase_bruck`` uses the
    radix-generalized Eq. (2).
    """
    if algorithm in _EQ1_SHAPED:
        return padded_bruck_time(nprocs, max_block, model, radix)
    if algorithm == "two_phase_bruck":
        return two_phase_bruck_time(nprocs, max_block, model, radix)
    raise KeyError(
        f"no radix cost form for algorithm {algorithm!r}; "
        f"known: {sorted(_EQ1_SHAPED + ('two_phase_bruck',))}")


def best_radix(nprocs: int, max_block: float,
               model: Union[LinearCostParams, MachineProfile], *,
               algorithm: str = "two_phase_bruck",
               radices: Optional[Sequence[int]] = None) -> int:
    """The analytically cheapest radix for one (P, N, machine) point.

    Minimizes the radix-generalized closed form over ``radices``
    (default :data:`DEFAULT_RADICES`, truncated to ``r <= P``).  Ties
    break toward the smaller radix, so radix 2 — today's kernels — wins
    whenever raising r buys nothing.  This is the auto-tuner's *cold*
    answer; ledger history overrides it once real runs accumulate.
    """
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    cands = [validate_radix(r) for r in (radices or DEFAULT_RADICES)]
    cands = sorted(set(r for r in cands if r <= max(nprocs, 2)))
    if not cands:
        raise ValueError("no candidate radices <= nprocs")
    best_r, best_t = cands[0], math.inf
    for r in cands:
        t = radix_cost(algorithm, nprocs, max_block, model, r)
        if t < best_t:
            best_r, best_t = r, t
    return best_r

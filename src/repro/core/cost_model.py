"""Theoretical latency/bandwidth cost model (paper §3.3, Eqs. 1–3).

The paper models one message exchange as ``alpha + n*beta`` (latency +
per-byte cost) and derives per-rank communication times for its two
non-uniform algorithms, assuming block sizes uniformly distributed in
``[0, N]`` (average ``N/2``):

* **Padded Bruck** (Eq. 1) — one message per step, every block padded to
  ``N``::

      T_padded = alpha*log2(P) + beta*log2(P)*((P+1)/2)*N

* **Two-phase Bruck** (Eq. 2) — two messages per step (metadata of
  ``(P+1)/2`` 4-byte sizes, then data averaging ``N/2`` per block)::

      T_twophase = 2*alpha*log2(P) + 4*beta*log2(P)*(P+1)/2
                   + (N/2)*beta*log2(P)*(P+1)/2

* **Crossover** (Eq. 3) — padded beats two-phase iff::

      (N - 8)*(P + 1)*beta < 4*alpha

  which always holds for ``N < 8`` bytes and otherwise only when latency
  (``alpha``) dominates.

These closed forms intentionally mirror the paper's simplifications (no
congestion, no per-message CPU overhead, ``log P`` for ``log2 P``); the
*measured* counterparts live in :mod:`repro.timing`.  The functions accept
either explicit ``alpha``/``beta`` or a
:class:`~repro.simmpi.machine.MachineProfile`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

from ..simmpi.machine import MachineProfile

__all__ = [
    "LinearCostParams",
    "padded_bruck_time",
    "two_phase_bruck_time",
    "spread_out_time",
    "padded_beats_two_phase",
    "crossover_block_size",
]

_META_ENTRY_BYTES = 4.0  # the paper charges 4 bytes per metadata entry


@dataclass(frozen=True)
class LinearCostParams:
    """The ``alpha + n*beta`` parameters of the paper's model."""

    alpha: float
    beta: float

    @classmethod
    def from_machine(cls, machine: MachineProfile,
                     nprocs: Optional[int] = None) -> "LinearCostParams":
        """Collapse a full profile into the paper's two-parameter model.

        The per-message CPU overheads fold into ``alpha`` (they are paid
        once per message, like latency); congestion folds into ``beta``
        when ``nprocs`` is given.
        """
        alpha = machine.alpha + machine.o_send + machine.o_recv
        beta = machine.beta_eff(nprocs) if nprocs else machine.beta
        return cls(alpha=alpha, beta=beta)


def _params(model: Union[LinearCostParams, MachineProfile],
            nprocs: int) -> LinearCostParams:
    if isinstance(model, MachineProfile):
        return LinearCostParams.from_machine(model, nprocs)
    return model


def _log2(nprocs: int) -> float:
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    return math.log2(nprocs) if nprocs > 1 else 0.0


def padded_bruck_time(nprocs: int, max_block: float,
                      model: Union[LinearCostParams, MachineProfile]) -> float:
    """Eq. (1): per-rank communication time of padded Bruck (seconds)."""
    prm = _params(model, nprocs)
    lg = _log2(nprocs)
    return prm.alpha * lg + prm.beta * lg * ((nprocs + 1) / 2.0) * max_block


def two_phase_bruck_time(nprocs: int, max_block: float,
                         model: Union[LinearCostParams, MachineProfile]) -> float:
    """Eq. (2): per-rank communication time of two-phase Bruck (seconds).

    Assumes the paper's uniform-distribution workload (average block size
    ``max_block / 2``).
    """
    prm = _params(model, nprocs)
    lg = _log2(nprocs)
    half = (nprocs + 1) / 2.0
    return (2.0 * prm.alpha * lg
            + _META_ENTRY_BYTES * prm.beta * lg * half
            + (max_block / 2.0) * prm.beta * lg * half)


def spread_out_time(nprocs: int, max_block: float,
                    model: Union[LinearCostParams, MachineProfile]) -> float:
    """Per-rank time of the spread-out baseline under the same model.

    Not one of the paper's numbered equations, but needed to reason about
    the Fig. 9 parameter space: ``P - 1`` messages, total volume
    ``P * N/2`` bytes on average.
    """
    prm = _params(model, nprocs)
    return (prm.alpha * max(nprocs - 1, 0)
            + prm.beta * nprocs * (max_block / 2.0))


def padded_beats_two_phase(nprocs: int, max_block: float,
                           model: Union[LinearCostParams, MachineProfile]) -> bool:
    """Eq. (3): does padded Bruck beat two-phase Bruck?

    ``(N - 8) * (P + 1) * beta < 4 * alpha`` — true whenever ``N < 8``
    bytes, else only in strongly latency-bound regimes.
    """
    prm = _params(model, nprocs)
    return (max_block - 2 * _META_ENTRY_BYTES) * (nprocs + 1) * prm.beta \
        < 4.0 * prm.alpha


def crossover_block_size(nprocs: int,
                         model: Union[LinearCostParams, MachineProfile]) -> float:
    """The ``N`` at which Eq. (3) flips: padded wins below, two-phase above.

    Derived by solving Eq. (3) for ``N``::

        N* = 8 + 4*alpha / ((P + 1) * beta)
    """
    prm = _params(model, nprocs)
    if prm.beta == 0:
        return math.inf
    return 2 * _META_ENTRY_BYTES + 4.0 * prm.alpha / ((nprocs + 1) * prm.beta)

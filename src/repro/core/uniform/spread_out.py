"""Spread-out algorithm for uniform all-to-all (paper's linear baseline).

Every rank posts ``P - 1`` nonblocking receives and ``P - 1`` nonblocking
sends (plus one local copy for its own block), staggered by rank so traffic
spreads across partners instead of all ranks hammering rank 0 first.  One
message per peer: latency cost grows linearly in ``P`` (each message pays
the per-message CPU overhead), but the total volume is the minimal
``P * n`` bytes — the exact trade the Bruck family inverts.

This is also what MPICH-derived vendor ``MPI_Alltoall(v)`` does for large
messages, so it doubles as the "vendor" baseline throughout the benchmark
suite (the paper compares against Cray MPI, which is MPICH-based and, per
the paper, implements alltoallv with spread-out variants only).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...simmpi.communicator import Communicator
from ...simmpi.request import Request
from ..common import validate_uniform_args
from .basic import PHASE_COMM

__all__ = ["spread_out"]


def spread_out(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray,
               block_nbytes: int, *, tag_base: int = 0) -> None:
    """Uniform all-to-all via nonblocking pairwise exchange."""
    p, rank = comm.size, comm.rank
    sview, rview, n = validate_uniform_args(sendbuf, recvbuf, block_nbytes, p)
    if n == 0:
        return
    with comm.phase(PHASE_COMM):
        if comm.payload_enabled:
            rview[rank * n:(rank + 1) * n] = sview[rank * n:(rank + 1) * n]
        comm.charge_copy(n)
        reqs: List[Request] = []
        for off in range(1, p):
            src = (rank - off) % p
            reqs.append(comm.irecv(rview[src * n:(src + 1) * n], src,
                                   tag=tag_base))
        for off in range(1, p):
            dst = (rank + off) % p
            reqs.append(comm.isend(sview[dst * n:(dst + 1) * n], dst,
                                   tag=tag_base))
        comm.waitall(reqs)

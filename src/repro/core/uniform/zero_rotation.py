"""Zero-Rotation Bruck — the paper's own uniform variant (§2.1).

A synthesis of two tricks:

* from **modified Bruck**: reversed communication direction so the final
  rotation disappears;
* from **SLOAV**: a *rotation index array* ``I[j] = (2p - j) % P`` so the
  initial rotation disappears too — blocks are addressed through ``I``
  instead of being physically shuffled.  Building ``I`` costs O(P) versus
  the O(P·n) of a physical rotation, and ``I`` is cacheable.

The receive buffer doubles as the working buffer: a block that has already
been exchanged at an earlier step lives at its slot in ``R``; a block that
has not yet moved still sits in the *original* send buffer at index
``I[slot]``.  Whether a block has moved is a pure function of its distance
index and the current step (``distance`` has a set bit below ``k``), so no
status bookkeeping is needed — this becomes an explicit ``status`` array
only in the non-uniform two-phase algorithm where sizes change en route.
"""

from __future__ import annotations

import numpy as np

from ...simmpi.communicator import Communicator
from ..common import (
    bruck_substeps,
    radix_block_moved_before,
    rotation_index_array,
    validate_uniform_args,
)
from .basic import PHASE_COMM

__all__ = ["zero_rotation_bruck"]

PHASE_INDEX = "index_setup"


def zero_rotation_bruck(comm: Communicator, sendbuf: np.ndarray,
                        recvbuf: np.ndarray, block_nbytes: int, *,
                        tag_base: int = 0, radix: int = 2) -> None:
    """Uniform all-to-all with neither rotation phase (explicit memcpy).

    ``radix`` selects the base-``r`` digit schedule (``ceil(log_r P)``
    steps, ``r - 1`` messages each); radix 2 is the unchanged default.
    """
    p, rank = comm.size, comm.rank
    sview, rview, n = validate_uniform_args(sendbuf, recvbuf, block_nbytes, p)
    if n == 0:
        return
    smat = sview[: p * n].reshape(p, n)
    rmat = rview[: p * n].reshape(p, n)

    with comm.phase(PHASE_INDEX):
        rot = rotation_index_array(rank, p)  # I[j] = (2p - j) % P
        # O(P) integer work instead of O(P*n) copying; charge it honestly.
        comm.charge_compute(p * 1.0e-9)

    # Self block goes straight to its final slot.
    if comm.payload_enabled:
        rmat[rank] = smat[rank]
    comm.charge_copy(n)

    with comm.phase(PHASE_COMM):
        subs = bruck_substeps(p, radix)
        max_m = max((len(s.distances) for s in subs), default=0)
        staging = np.empty(max_m * n, dtype=np.uint8)
        for sub in subs:
            dist = sub.distances
            m = len(dist)
            slots = (np.asarray(dist, dtype=np.int64) + rank) % p
            moved = np.asarray(
                [radix_block_moved_before(i, sub.step, radix) for i in dist],
                dtype=bool,
            )
            dst = (rank - sub.jump) % p
            src_rank = (rank + sub.jump) % p
            stage = np.empty((m, n), dtype=np.uint8)
            # Moved blocks live in R at their slot; unmoved blocks are
            # still the caller's original data, addressed through I.
            if comm.payload_enabled:
                if moved.any():
                    stage[moved] = rmat[slots[moved]]
                if (~moved).any():
                    stage[~moved] = smat[rot[slots[~moved]]]
            comm.charge_copies(np.full(m, n, dtype=np.int64))
            sreq = comm.isend(stage.reshape(-1), dst, tag=tag_base + sub.index)
            rbuf = staging[: m * n]
            rreq = comm.irecv(rbuf, src_rank, tag=tag_base + sub.index)
            sreq.wait()
            rreq.wait()
            if comm.payload_enabled:
                rmat[slots] = rbuf.reshape(m, n)
            comm.charge_copies(np.full(m, n, dtype=np.int64))

"""Basic Bruck algorithm for uniform all-to-all (paper §2.1, Fig. 1a).

Three phases:

1. **Initial rotation** — ``R[i] = S[(p + i) % P]``: after this, the block
   at slot ``i`` is the one rank ``p`` must deliver to rank ``(p + i) % P``,
   i.e. slot index = remaining travel distance.
2. **log2(P) communication steps** — in step ``k``, every rank sends to
   ``(p + 2^k) % P`` all slots whose index has bit ``k`` set, and receives
   the same slot set from ``(p - 2^k) % P``.  A block with distance ``i``
   is forwarded exactly at the set bits of ``i``, keeps its slot index at
   every hop, and therefore travels a total of ``i`` ranks.
3. **Final rotation** — on arrival, slot ``j`` holds the block *from*
   source ``(p - j) % P``, so ``R[i] = R[(p - i) % P]`` puts block ``i``
   (from source ``i``) at slot ``i``.

Two build flavours, matching the paper's measurement pairs:
``use_datatypes=False`` (explicit ``memcpy`` packing, "BasicBruck") and
``use_datatypes=True`` (derived-datatype engine, "BasicBruck-dt").
"""

from __future__ import annotations

import numpy as np

from ...simmpi.communicator import Communicator
from ...simmpi.datatype import IndexedBlocks
from ..common import num_steps, send_block_distances, validate_uniform_args

__all__ = ["basic_bruck", "basic_bruck_dt"]

PHASE_ROTATE_IN = "initial_rotation"
PHASE_COMM = "communication"
PHASE_ROTATE_OUT = "final_rotation"


def basic_bruck(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray,
                block_nbytes: int, *, use_datatypes: bool = False,
                tag_base: int = 0) -> None:
    """Uniform all-to-all via the three-phase basic Bruck algorithm.

    ``sendbuf``/``recvbuf`` are flat byte buffers of at least
    ``P * block_nbytes`` bytes; block ``j`` occupies
    ``[j * block_nbytes, (j+1) * block_nbytes)``.
    """
    p, rank = comm.size, comm.rank
    sview, rview, n = validate_uniform_args(sendbuf, recvbuf, block_nbytes, p)
    if n == 0:
        return
    smat = sview[: p * n].reshape(p, n)
    rmat = rview[: p * n].reshape(p, n)

    with comm.phase(PHASE_ROTATE_IN):
        src = (rank + np.arange(p)) % p
        if comm.payload_enabled:
            rmat[:] = smat[src]
        comm.charge_copies(np.full(p, n, dtype=np.int64))

    with comm.phase(PHASE_COMM):
        staging = np.empty(((p + 1) // 2) * n, dtype=np.uint8)
        for k in range(num_steps(p)):
            dist = send_block_distances(k, p)
            if not dist:
                continue
            m = len(dist)
            slots = np.asarray(dist, dtype=np.int64)  # basic: slot == distance
            dst = (rank + (1 << k)) % p
            src_rank = (rank - (1 << k)) % p
            rbuf = staging[: m * n]
            if use_datatypes:
                blocks = IndexedBlocks([(int(i) * n, n) for i in dist])
                payload = comm.pack(rview, blocks)
                sreq = comm.isend(payload, dst, tag=tag_base + k)
                rreq = comm.irecv(rbuf, src_rank, tag=tag_base + k)
                sreq.wait()
                rreq.wait()
                comm.unpack(rview, blocks, rbuf)
            else:
                if comm.payload_enabled:
                    stage = rmat[slots].reshape(-1)  # explicit pack (copies)
                else:
                    stage = np.empty(m * n, dtype=np.uint8)
                comm.charge_copies(np.full(m, n, dtype=np.int64))
                sreq = comm.isend(stage, dst, tag=tag_base + k)
                rreq = comm.irecv(rbuf, src_rank, tag=tag_base + k)
                sreq.wait()
                rreq.wait()
                if comm.payload_enabled:
                    rmat[slots] = rbuf.reshape(m, n)  # explicit unpack
                comm.charge_copies(np.full(m, n, dtype=np.int64))

    with comm.phase(PHASE_ROTATE_OUT):
        src = (rank - np.arange(p)) % p
        if comm.payload_enabled:
            tmp = rmat.copy()
            comm.charge_copy(p * n)
            rmat[:] = tmp[src]
        else:
            comm.charge_copy(p * n)
        comm.charge_copies(np.full(p, n, dtype=np.int64))


def basic_bruck_dt(comm: Communicator, sendbuf: np.ndarray,
                   recvbuf: np.ndarray, block_nbytes: int, *,
                   tag_base: int = 0) -> None:
    """BasicBruck-dt: the derived-datatype build of :func:`basic_bruck`."""
    basic_bruck(comm, sendbuf, recvbuf, block_nbytes, use_datatypes=True,
                tag_base=tag_base)

"""Uniform all-to-all algorithms (paper Section 2).

The registry maps the paper's algorithm names to implementations sharing
one signature::

    fn(comm, sendbuf, recvbuf, block_nbytes, *, tag_base=0)

Use :func:`alltoall` to dispatch by name.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ...simmpi.communicator import Communicator
from ..registry import get_algorithm, register_algorithm
from .basic import basic_bruck, basic_bruck_dt
from .modified import modified_bruck, modified_bruck_dt
from .spread_out import spread_out
from .zero_rotation import zero_rotation_bruck
from .zerocopy import zero_copy_bruck_dt

__all__ = [
    "basic_bruck",
    "basic_bruck_dt",
    "modified_bruck",
    "modified_bruck_dt",
    "zero_copy_bruck_dt",
    "zero_rotation_bruck",
    "spread_out",
    "alltoall",
]

AlltoallFn = Callable[..., None]

for _name, _fn, _desc, _radix in (
    ("basic_bruck", basic_bruck, "Fig. 2 basic Bruck (explicit copies)",
     False),
    ("basic_bruck_dt", basic_bruck_dt, "basic Bruck, derived datatypes",
     False),
    ("modified_bruck", modified_bruck, "basic Bruck minus final rotation",
     True),
    ("modified_bruck_dt", modified_bruck_dt,
     "modified Bruck, derived datatypes", True),
    ("zero_copy_bruck_dt", zero_copy_bruck_dt,
     "zero-copy Bruck over two working buffers", False),
    ("zero_rotation_bruck", zero_rotation_bruck,
     "the paper's zero-rotation Bruck (index arithmetic, no rotations)",
     True),
    ("spread_out", spread_out, "pairwise Isend/Irecv spread-out baseline",
     False),
):
    register_algorithm(_name, "uniform", _fn, _desc, supports_radix=_radix)

def __getattr__(name: str):
    # One-release compatibility stub for the removed alias dict; use
    # ``list_algorithms("uniform")`` / ``get_algorithm(name, "uniform")``.
    if name == "UNIFORM_ALGORITHMS":
        import warnings

        warnings.warn(
            "UNIFORM_ALGORITHMS is deprecated; use "
            "repro.core.registry.list_algorithms('uniform') / "
            "get_algorithm(name, 'uniform') instead",
            DeprecationWarning, stacklevel=2)
        from ..registry import deprecated_alias_dict

        return deprecated_alias_dict("uniform")
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def alltoall(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray,
             block_nbytes: int, *, algorithm: str = "zero_rotation_bruck",
             tag_base: int = 0, radix: int = 2) -> None:
    """Uniform all-to-all dispatching on ``algorithm`` name.

    Names resolve through :mod:`repro.core.registry`; ``"vendor"`` routes
    to the communicator's builtin (spread-out) alltoall, mirroring a call
    to the MPI library's own ``MPI_Alltoall``.  ``radix`` other than 2
    requires a radix-capable algorithm (``Algorithm.supports_radix``).
    """
    algo = get_algorithm(algorithm, kind="uniform")
    if radix != 2:
        if not algo.supports_radix:
            raise ValueError(
                f"algorithm {algo.name!r} does not support radix "
                f"{radix}; radix-capable uniform algorithms accept radix=")
        algo.fn(comm, sendbuf, recvbuf, block_nbytes, tag_base=tag_base,
                radix=radix)
    else:
        algo.fn(comm, sendbuf, recvbuf, block_nbytes, tag_base=tag_base)

"""Uniform all-to-all algorithms (paper Section 2).

The registry maps the paper's algorithm names to implementations sharing
one signature::

    fn(comm, sendbuf, recvbuf, block_nbytes, *, tag_base=0)

Use :func:`alltoall` to dispatch by name.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ...simmpi.communicator import Communicator
from .basic import basic_bruck, basic_bruck_dt
from .modified import modified_bruck, modified_bruck_dt
from .spread_out import spread_out
from .zero_rotation import zero_rotation_bruck
from .zerocopy import zero_copy_bruck_dt

__all__ = [
    "basic_bruck",
    "basic_bruck_dt",
    "modified_bruck",
    "modified_bruck_dt",
    "zero_copy_bruck_dt",
    "zero_rotation_bruck",
    "spread_out",
    "UNIFORM_ALGORITHMS",
    "alltoall",
]

AlltoallFn = Callable[..., None]

#: Registry of every uniform variant evaluated in Fig. 2, plus the
#: spread-out baseline.
UNIFORM_ALGORITHMS: Dict[str, AlltoallFn] = {
    "basic_bruck": basic_bruck,
    "basic_bruck_dt": basic_bruck_dt,
    "modified_bruck": modified_bruck,
    "modified_bruck_dt": modified_bruck_dt,
    "zero_copy_bruck_dt": zero_copy_bruck_dt,
    "zero_rotation_bruck": zero_rotation_bruck,
    "spread_out": spread_out,
}


def alltoall(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray,
             block_nbytes: int, *, algorithm: str = "zero_rotation_bruck",
             tag_base: int = 0) -> None:
    """Uniform all-to-all dispatching on ``algorithm`` name.

    ``"vendor"`` routes to the communicator's builtin (spread-out) alltoall,
    mirroring a call to the MPI library's own ``MPI_Alltoall``.
    """
    if algorithm == "vendor":
        comm.alltoall(sendbuf, recvbuf, block_nbytes)
        return
    try:
        fn = UNIFORM_ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(UNIFORM_ALGORITHMS) + ["vendor"])
        raise KeyError(
            f"unknown uniform algorithm {algorithm!r}; known: {known}"
        ) from None
    fn(comm, sendbuf, recvbuf, block_nbytes, tag_base=tag_base)

"""Uniform all-to-all algorithms (paper Section 2).

The registry maps the paper's algorithm names to implementations sharing
one signature::

    fn(comm, sendbuf, recvbuf, block_nbytes, *, tag_base=0)

Use :func:`alltoall` to dispatch by name.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ...simmpi.communicator import Communicator
from ..registry import get_algorithm, register_algorithm
from .basic import basic_bruck, basic_bruck_dt
from .modified import modified_bruck, modified_bruck_dt
from .spread_out import spread_out
from .zero_rotation import zero_rotation_bruck
from .zerocopy import zero_copy_bruck_dt

__all__ = [
    "basic_bruck",
    "basic_bruck_dt",
    "modified_bruck",
    "modified_bruck_dt",
    "zero_copy_bruck_dt",
    "zero_rotation_bruck",
    "spread_out",
    "UNIFORM_ALGORITHMS",
    "alltoall",
]

AlltoallFn = Callable[..., None]

for _name, _fn, _desc in (
    ("basic_bruck", basic_bruck, "Fig. 2 basic Bruck (explicit copies)"),
    ("basic_bruck_dt", basic_bruck_dt, "basic Bruck, derived datatypes"),
    ("modified_bruck", modified_bruck, "basic Bruck minus final rotation"),
    ("modified_bruck_dt", modified_bruck_dt,
     "modified Bruck, derived datatypes"),
    ("zero_copy_bruck_dt", zero_copy_bruck_dt,
     "zero-copy Bruck over two working buffers"),
    ("zero_rotation_bruck", zero_rotation_bruck,
     "the paper's zero-rotation Bruck (index arithmetic, no rotations)"),
    ("spread_out", spread_out, "pairwise Isend/Irecv spread-out baseline"),
):
    register_algorithm(_name, "uniform", _fn, _desc)

#: Deprecated alias of :mod:`repro.core.registry` — kept for backward
#: compatibility; new code should use ``get_algorithm(name, "uniform")``
#: or ``list_algorithms("uniform")``.  Note it excludes ``"vendor"``,
#: which the registry does carry.
UNIFORM_ALGORITHMS: Dict[str, AlltoallFn] = {
    "basic_bruck": basic_bruck,
    "basic_bruck_dt": basic_bruck_dt,
    "modified_bruck": modified_bruck,
    "modified_bruck_dt": modified_bruck_dt,
    "zero_copy_bruck_dt": zero_copy_bruck_dt,
    "zero_rotation_bruck": zero_rotation_bruck,
    "spread_out": spread_out,
}


def alltoall(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray,
             block_nbytes: int, *, algorithm: str = "zero_rotation_bruck",
             tag_base: int = 0) -> None:
    """Uniform all-to-all dispatching on ``algorithm`` name.

    Names resolve through :mod:`repro.core.registry`; ``"vendor"`` routes
    to the communicator's builtin (spread-out) alltoall, mirroring a call
    to the MPI library's own ``MPI_Alltoall``.
    """
    fn = get_algorithm(algorithm, kind="uniform").fn
    fn(comm, sendbuf, recvbuf, block_nbytes, tag_base=tag_base)

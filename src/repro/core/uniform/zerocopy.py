"""Zero-copy Bruck (Träff et al. [39]; paper §2.1), datatype-only build.

Modified Bruck still copies every received block out of a staging buffer at
the end of each step.  Zero-copy Bruck removes those copies by *ping-pong
buffering*: a second buffer ``T`` alternates with ``R`` so a block is always
sent from wherever its previous hop deposited it and lands where its next
hop expects it.

Which buffer a block with distance ``i`` occupies at step ``k`` is decided
by the parity of ``b = popcount(i >> (k + 1))`` — the number of *remaining*
hops after this one:

* ``b`` odd  → the block currently sits in ``R``; send from ``R``, the
  receiver deposits it into ``T``;
* ``b`` even → send from ``T``, the receiver deposits into ``R``.

With this rule the final hop (``b == 0``) always lands in ``R``, so ``R``
ends in final layout with no post-pass.  For the rule to hold at a block's
*first* hop, the initial rotation must place blocks with an even popcount
of ``i`` in ``R`` and odd popcount in ``T`` (the self block, ``i = 0``,
goes straight to its final slot in ``R``).

The paper (and [39]) implement this with ``MPI_Type_create_struct`` so the
MPI datatype engine gathers each step's mixed ``R``/``T`` block set; we
reproduce that as datatype-engine packs over both buffers.  The per-block
datatype overhead is exactly why this variant measures *slowest* for small
blocks (Fig. 2a), despite doing the least copying.
"""

from __future__ import annotations

import numpy as np

from ...simmpi.communicator import Communicator
from ...simmpi.datatype import IndexedBlocks
from ..common import num_steps, send_block_distances, validate_uniform_args
from .basic import PHASE_COMM, PHASE_ROTATE_IN

__all__ = ["zero_copy_bruck_dt"]


def _popcount(x: int) -> int:
    return int(x).bit_count()


def zero_copy_bruck_dt(comm: Communicator, sendbuf: np.ndarray,
                       recvbuf: np.ndarray, block_nbytes: int, *,
                       tag_base: int = 0) -> None:
    """Uniform all-to-all via zero-copy (ping-pong buffered) Bruck."""
    p, rank = comm.size, comm.rank
    sview, rview, n = validate_uniform_args(sendbuf, recvbuf, block_nbytes, p)
    if n == 0:
        return
    smat = sview[: p * n].reshape(p, n)
    rmat = rview[: p * n].reshape(p, n)
    tbuf = np.empty(p * n, dtype=np.uint8)
    tmat = tbuf.reshape(p, n)

    with comm.phase(PHASE_ROTATE_IN):
        # R[j] / T[j] = S[(2p - j) % P], split by popcount parity of the
        # distance i = (j - p) % P.
        if comm.payload_enabled:
            for j in range(p):
                i = (j - rank) % p
                block = smat[(2 * rank - j) % p]
                if _popcount(i) % 2 == 0:
                    rmat[j] = block
                else:
                    tmat[j] = block
        comm.charge_copies(np.full(p, n, dtype=np.int64))

    with comm.phase(PHASE_COMM):
        staging = np.empty(((p + 1) // 2) * n, dtype=np.uint8)
        for k in range(num_steps(p)):
            dist = send_block_distances(k, p)
            if not dist:
                continue
            m = len(dist)
            dst = (rank - (1 << k)) % p
            src_rank = (rank + (1 << k)) % p
            # Partition this step's distance set by remaining-hop parity.
            # Message layout: ascending distance order, whichever buffer a
            # block lives in (mirrors one struct-datatype send).
            in_r = [(_popcount(i >> (k + 1)) % 2) == 1 for i in dist]
            slots = [(i + rank) % p for i in dist]
            r_extents = [(slots[a] * n, n) for a in range(m) if in_r[a]]
            t_extents = [(slots[a] * n, n) for a in range(m) if not in_r[a]]
            stage = np.empty((m, n), dtype=np.uint8)
            mask = np.asarray(in_r)
            if r_extents:
                packed = comm.pack(rview, IndexedBlocks(r_extents))
                if comm.payload_enabled:
                    stage[mask] = packed.reshape(-1, n)
            if t_extents:
                packed = comm.pack(tbuf, IndexedBlocks(t_extents))
                if comm.payload_enabled:
                    stage[~mask] = packed.reshape(-1, n)
            sreq = comm.isend(stage.reshape(-1), dst, tag=tag_base + k)
            rbuf = staging[: m * n]
            rreq = comm.irecv(rbuf, src_rank, tag=tag_base + k)
            sreq.wait()
            rreq.wait()
            # Incoming block with remaining hops b lands in T when the
            # *sender* held it in R (b odd), and vice versa.  In phantom
            # mode ``unpack`` ignores its data argument, so the staging
            # slices are not materialized.
            rmat_in = rbuf.reshape(m, n)
            if t_extents:  # blocks sent from T land in R
                comm.unpack(rview, IndexedBlocks(t_extents),
                            rmat_in[~mask].reshape(-1)
                            if comm.payload_enabled else rbuf)
            if r_extents:  # blocks sent from R land in T
                comm.unpack(tbuf, IndexedBlocks(r_extents),
                            rmat_in[mask].reshape(-1)
                            if comm.payload_enabled else rbuf)

"""Modified Bruck algorithm (Träff et al. [39]; paper §2.1, Fig. 1b).

Eliminates basic Bruck's final rotation by reversing the communication
direction and adjusting the initial rotation:

1. **Initial rotation** — ``R[j] = S[(2p - j) % P]``.  The block rank ``p``
   must deliver to ``d`` sits at slot ``(p + i) % P`` where
   ``i = (p - d) % P`` is its travel distance (now in the *negative*
   direction).
2. **log2(P) steps** — in step ``k``, send to ``(p - 2^k) % P`` the slots
   ``(i + p) % P`` for every distance ``i`` with bit ``k`` set; receive the
   same distance set from ``(p + 2^k) % P``.  The slot of a block is always
   ``(i + current_rank) % P``, so on its destination ``d = s - i`` it sits
   at slot ``(i + d) % P = s`` — the receive buffer's final layout.  No
   final rotation.
"""

from __future__ import annotations

import numpy as np

from ...simmpi.communicator import Communicator
from ...simmpi.datatype import IndexedBlocks
from ..common import bruck_substeps, validate_uniform_args
from .basic import PHASE_COMM, PHASE_ROTATE_IN

__all__ = ["modified_bruck", "modified_bruck_dt"]


def modified_bruck(comm: Communicator, sendbuf: np.ndarray,
                   recvbuf: np.ndarray, block_nbytes: int, *,
                   use_datatypes: bool = False, tag_base: int = 0,
                   radix: int = 2) -> None:
    """Uniform all-to-all via modified Bruck (no final rotation).

    ``radix`` generalizes the exchange to base-``r`` digits: ``ceil(log_r
    P)`` steps of up to ``r - 1`` messages each.  Radix 2 (the default)
    runs the identical substep schedule as before.
    """
    p, rank = comm.size, comm.rank
    sview, rview, n = validate_uniform_args(sendbuf, recvbuf, block_nbytes, p)
    if n == 0:
        return
    smat = sview[: p * n].reshape(p, n)
    rmat = rview[: p * n].reshape(p, n)

    with comm.phase(PHASE_ROTATE_IN):
        src = (2 * rank - np.arange(p)) % p
        if comm.payload_enabled:
            rmat[:] = smat[src]
        comm.charge_copies(np.full(p, n, dtype=np.int64))

    with comm.phase(PHASE_COMM):
        subs = bruck_substeps(p, radix)
        max_m = max((len(s.distances) for s in subs), default=0)
        staging = np.empty(max_m * n, dtype=np.uint8)
        for sub in subs:
            dist = sub.distances
            m = len(dist)
            slots = (np.asarray(dist, dtype=np.int64) + rank) % p
            dst = (rank - sub.jump) % p
            src_rank = (rank + sub.jump) % p
            tag = tag_base + sub.index
            rbuf = staging[: m * n]
            if use_datatypes:
                blocks = IndexedBlocks([(int(j) * n, n) for j in slots])
                payload = comm.pack(rview, blocks)
                sreq = comm.isend(payload, dst, tag=tag)
                rreq = comm.irecv(rbuf, src_rank, tag=tag)
                sreq.wait()
                rreq.wait()
                comm.unpack(rview, blocks, rbuf)
            else:
                if comm.payload_enabled:
                    stage = rmat[slots].reshape(-1)
                else:
                    stage = np.empty(m * n, dtype=np.uint8)
                comm.charge_copies(np.full(m, n, dtype=np.int64))
                sreq = comm.isend(stage, dst, tag=tag)
                rreq = comm.irecv(rbuf, src_rank, tag=tag)
                sreq.wait()
                rreq.wait()
                if comm.payload_enabled:
                    rmat[slots] = rbuf.reshape(m, n)
                comm.charge_copies(np.full(m, n, dtype=np.int64))


def modified_bruck_dt(comm: Communicator, sendbuf: np.ndarray,
                      recvbuf: np.ndarray, block_nbytes: int, *,
                      tag_base: int = 0, radix: int = 2) -> None:
    """ModifiedBruck-dt: the derived-datatype build of :func:`modified_bruck`."""
    modified_bruck(comm, sendbuf, recvbuf, block_nbytes, use_datatypes=True,
                   tag_base=tag_base, radix=radix)

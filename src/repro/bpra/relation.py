"""Distributed relations for balanced parallel relational algebra (BPRA).

The paper's applications (§5) are built on an open-source BPRA stack
[13, 17, 27, 28]: database relations whose tuples are hash-partitioned
across MPI ranks, with joins evaluated locally and results redistributed
through non-uniform all-to-all exchanges.  This module provides the local
building block: a :class:`LocalRelation` holding one rank's partition of a
relation of fixed arity, with the hash-indexing a relational join needs.

Tuples are small fixed-arity tuples of Python ints (vertex ids, program
labels).  Ownership of a tuple is decided by hashing one designated column
(``key_column``) — the column the *next* join will match on, so joins are
always local.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

__all__ = ["hash_owner", "LocalRelation"]

IntTuple = Tuple[int, ...]

# Knuth multiplicative hashing: cheap, deterministic across runs (unlike
# Python's salted str hash), and mixes consecutive vertex ids well enough
# to keep partitions balanced — the "balanced" in BPRA.
_KNUTH = 2654435761


def hash_owner(value: int, nprocs: int) -> int:
    """Owner rank of a key value (deterministic, well-mixed)."""
    return ((value * _KNUTH) & 0xFFFFFFFF) % nprocs


class LocalRelation:
    """One rank's partition of a distributed relation.

    Parameters
    ----------
    arity:
        Number of columns; all tuples must match.
    key_column:
        The column whose hash decides tuple ownership *and* the column the
        local index is built on.
    """

    def __init__(self, arity: int, key_column: int = 0) -> None:
        if arity <= 0:
            raise ValueError(f"arity must be positive, got {arity}")
        if not 0 <= key_column < arity:
            raise ValueError(
                f"key_column {key_column} out of range for arity {arity}")
        self.arity = arity
        self.key_column = key_column
        self._tuples: Set[IntTuple] = set()
        self._index: Dict[int, List[IntTuple]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, tup: IntTuple) -> bool:
        return tup in self._tuples

    def __iter__(self) -> Iterator[IntTuple]:
        return iter(self._tuples)

    def _check(self, tup: IntTuple) -> IntTuple:
        if len(tup) != self.arity:
            raise ValueError(
                f"tuple {tup!r} has arity {len(tup)}, relation expects "
                f"{self.arity}")
        return tup

    def add(self, tup: IntTuple) -> bool:
        """Insert one tuple; returns True iff it was new."""
        tup = self._check(tuple(int(v) for v in tup))
        if tup in self._tuples:
            return False
        self._tuples.add(tup)
        self._index.setdefault(tup[self.key_column], []).append(tup)
        return True

    def add_all(self, tuples: Iterable[IntTuple]) -> List[IntTuple]:
        """Insert many tuples; returns the list of genuinely new ones.

        The returned "delta" is what semi-naive evaluation iterates on.
        """
        fresh: List[IntTuple] = []
        for tup in tuples:
            if self.add(tup):
                fresh.append(tup)
        return fresh

    def matching(self, key: int) -> List[IntTuple]:
        """All local tuples whose key column equals ``key`` (the probe side
        of a hash join)."""
        return self._index.get(key, [])

    def tuples(self) -> Set[IntTuple]:
        """The local tuple set (do not mutate)."""
        return self._tuples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LocalRelation(arity={self.arity}, "
                f"key_column={self.key_column}, size={len(self)})")

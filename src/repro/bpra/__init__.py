"""Balanced parallel relational algebra (BPRA) substrate.

Hash-partitioned relations, a pluggable all-to-all tuple exchange, and a
semi-naive fixed-point driver — the stack the paper's graph-mining and
program-analysis applications run on (Section 5).
"""

from .comm import ExchangeStats, exchange_tuples
from .fixpoint import FixpointResult, IterationRecord, run_fixpoint
from .relation import LocalRelation, hash_owner

__all__ = [
    "LocalRelation",
    "hash_owner",
    "exchange_tuples",
    "ExchangeStats",
    "run_fixpoint",
    "FixpointResult",
    "IterationRecord",
]

"""Tuple exchange: the BPRA layer's single all-to-all communication phase.

The paper's applications funnel *all* relational data produced in one
round of parallel computation through one ``MPI_Alltoallv`` call (§5).
:func:`exchange_tuples` is that call: it serializes each destination's
tuples into a flat int64 payload, performs the non-uniform all-to-all with
a pluggable algorithm (``"vendor"`` or ``"two_phase_bruck"`` — swapping is
a one-argument change, mirroring how the paper swapped implementations
"easily" because the function signatures match), and returns the received
tuples along with the measurement record Fig. 11/12 needs (simulated comm
time and the iteration's max block size ``N``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.nonuniform import alltoallv
from ..simmpi.communicator import Communicator

__all__ = ["ExchangeStats", "exchange_tuples"]

IntTuple = Tuple[int, ...]
_VALUE_BYTES = 8  # tuples travel as int64 columns


@dataclass(frozen=True)
class ExchangeStats:
    """Measurement record of one all-to-all exchange (per rank)."""

    comm_seconds: float      # simulated time this rank spent in the exchange
    max_block_bytes: int     # global max block size N this iteration
    sent_tuples: int
    received_tuples: int


def exchange_tuples(comm: Communicator, outgoing: Dict[int, List[IntTuple]],
                    arity: int, *, algorithm: str = "two_phase_bruck",
                    ) -> Tuple[List[IntTuple], ExchangeStats]:
    """Send ``outgoing[dest]`` tuple lists to every destination rank.

    Returns the flat list of received tuples and the iteration's
    :class:`ExchangeStats`.  Every rank must call this collectively with
    consistent metadata (it runs a size-exchange allgather followed by the
    payload alltoallv, like the BPRA codebase's comm phase).
    """
    p = comm.size
    for dest in outgoing:
        if not 0 <= dest < p:
            raise ValueError(f"invalid destination rank {dest}")

    start_clock = comm.clock

    # Serialize per-destination payloads (tuple-major, int64).
    sendcounts = np.zeros(p, dtype=np.int64)
    payloads: List[np.ndarray] = []
    sent = 0
    for dest in range(p):
        tuples = outgoing.get(dest, ())
        sent += len(tuples)
        if tuples:
            arr = np.asarray(tuples, dtype=np.int64).reshape(-1)
            if arr.size != len(tuples) * arity:
                raise ValueError(
                    f"tuples for dest {dest} do not all have arity {arity}")
        else:
            arr = np.empty(0, dtype=np.int64)
        payloads.append(arr)
        sendcounts[dest] = arr.size * _VALUE_BYTES
    sendbuf = (np.concatenate(payloads).view(np.uint8)
               if sent else np.empty(0, dtype=np.uint8))
    sdispls = np.zeros(p, dtype=np.int64)
    if p > 1:
        np.cumsum(sendcounts[:-1], out=sdispls[1:])

    # Size exchange: recvcounts[j] = bytes rank j will send us.  The BPRA
    # stack does this with an MPI_Alltoall of counts before the payload
    # call (one 8-byte block per peer).
    counts_recv = np.empty(p, dtype=np.int64)
    comm.alltoall(sendcounts, counts_recv, 8)
    recvcounts = counts_recv
    rdispls = np.zeros(p, dtype=np.int64)
    if p > 1:
        np.cumsum(recvcounts[:-1], out=rdispls[1:])
    recvbuf = np.empty(int(recvcounts.sum()), dtype=np.uint8)

    alltoallv(comm, sendbuf, sendcounts, sdispls,
              recvbuf, recvcounts, rdispls, algorithm=algorithm)

    # The iteration's N (Fig. 12 plots this against the comm time).
    local_max = int(sendcounts.max()) if p else 0
    max_block = int(comm.allreduce(local_max, op="max"))

    values = recvbuf.view(np.int64)
    received = [tuple(row) for row in values.reshape(-1, arity).tolist()]
    return received, ExchangeStats(
        comm_seconds=comm.clock - start_clock,
        max_block_bytes=max_block,
        sent_tuples=sent,
        received_tuples=len(received),
    )

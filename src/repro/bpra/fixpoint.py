"""Semi-naive fixed-point driver for BPRA applications.

Both of the paper's applications (transitive closure, kCFA) are fixed-point
computations of the same shape: a monotone rule produces new facts from the
newest delta, facts are routed to their owner rank with one all-to-all
exchange per iteration, and the loop ends when a global round produces
nothing new anywhere (detected with an allreduce).  Fig. 11/12 plot
per-iteration behaviour of exactly this loop under the two alltoallv
implementations.

:func:`run_fixpoint` encapsulates the loop; applications supply a *rule*
callback that maps the freshly-delivered delta tuples to
``{dest_rank: [tuple, ...]}`` of candidate facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..simmpi.communicator import Communicator
from .comm import exchange_tuples
from .relation import LocalRelation

__all__ = ["IterationRecord", "FixpointResult", "run_fixpoint"]

IntTuple = Tuple[int, ...]
RuleFn = Callable[[List[IntTuple]], Dict[int, List[IntTuple]]]


@dataclass(frozen=True)
class IterationRecord:
    """Per-iteration measurements (one Fig. 11/12 data point)."""

    iteration: int
    comm_seconds: float
    max_block_bytes: int
    new_tuples: int          # facts that survived dedup this iteration
    total_tuples: int        # cumulative relation size on this rank


@dataclass
class FixpointResult:
    """Outcome of one rank's participation in the fixed point."""

    iterations: int
    relation: LocalRelation
    history: List[IterationRecord] = field(default_factory=list)

    @property
    def total_comm_seconds(self) -> float:
        return sum(r.comm_seconds for r in self.history)

    @property
    def total_new_tuples(self) -> int:
        return sum(r.new_tuples for r in self.history)


def run_fixpoint(comm: Communicator, relation: LocalRelation,
                 initial_delta: List[IntTuple], rule: RuleFn, *,
                 algorithm: str = "two_phase_bruck",
                 max_iterations: int = 100000) -> FixpointResult:
    """Iterate ``rule`` to a global fixed point.

    Parameters
    ----------
    relation:
        This rank's partition of the accumulating output relation; the
        tuples of ``initial_delta`` must already be inserted.
    initial_delta:
        The first delta (this rank's share of the seed facts).
    rule:
        Maps the current delta to candidate facts keyed by owner rank.
        Candidates may include duplicates; dedup happens on arrival
        against ``relation``.
    algorithm:
        The alltoallv implementation routing facts (``"vendor"`` or any
        name in ``list_algorithms("nonuniform")``).

    Returns
    -------
    FixpointResult
        With one :class:`IterationRecord` per global iteration (all ranks
        perform the same number of iterations).
    """
    delta = list(initial_delta)
    history: List[IterationRecord] = []
    iteration = 0
    while True:
        iteration += 1
        if iteration > max_iterations:
            raise RuntimeError(
                f"fixed point did not converge within {max_iterations} "
                f"iterations")
        outgoing = rule(delta)
        received, stats = exchange_tuples(
            comm, outgoing, relation.arity, algorithm=algorithm)
        delta = relation.add_all(received)
        history.append(IterationRecord(
            iteration=iteration,
            comm_seconds=stats.comm_seconds,
            max_block_bytes=stats.max_block_bytes,
            new_tuples=len(delta),
            total_tuples=len(relation),
        ))
        # Global convergence: did any rank derive anything new?
        total_new = comm.allreduce(len(delta), op="sum")
        if total_new == 0:
            break
    return FixpointResult(iterations=iteration, relation=relation,
                          history=history)

"""Analytic timing of the uniform Bruck variants (Fig. 2a/2b at any P).

Uniform all-to-all is perfectly symmetric: every rank executes identical
work against identical partners, so all simulated clocks advance in
lock-step and the per-rank recurrence collapses to a scalar recursion —
``arrival == own_depart + wire`` because the partner's depart equals ours.
That makes 32K-rank predictions O(log P) scalar work, while remaining
*bit-identical* to the thread simulator at small P (asserted in the
integration tests).

Each predictor returns a :class:`UniformTiming` with the same phase split
the functional implementations trace (Fig. 2b's breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..core.common import bruck_substeps
from ..core.registry import get_algorithm
from ..simmpi.machine import MachineProfile

__all__ = ["UniformTiming", "predict_uniform", "UNIFORM_PREDICTORS"]

_ROT_INDEX_COST_PER_PROC = 1.0e-9  # matches zero_rotation_bruck's charge


@dataclass
class UniformTiming:
    """Per-phase simulated times (seconds) of one uniform all-to-all."""

    algorithm: str
    nprocs: int
    block_nbytes: int
    initial_rotation: float = 0.0
    communication: float = 0.0
    final_rotation: float = 0.0
    index_setup: float = 0.0

    @property
    def total(self) -> float:
        return (self.initial_rotation + self.communication
                + self.final_rotation + self.index_setup)


def _exchange(machine: MachineProfile, nprocs: int, nbytes: int) -> float:
    """Scalar clock advance of one symmetric isend/irecv/wait exchange.

    All ranks are in lock-step, so the partner's depart equals our own and
    the receive rule collapses to
    ``o_send + max(o_recv, head_latency) + serial_time``.
    """
    return (machine.o_send
            + max(machine.o_recv, machine.head_latency(nbytes))
            + machine.serial_time(nbytes, nprocs))


def _steps(nprocs: int, radix: int = 2) -> List[List[int]]:
    # One distance list per communication round.  For radix 2 the substep
    # schedule is the classic one-round-per-bit list, integer-identical to
    # the old send_block_distances() loop, so predictions stay bit-exact.
    return [list(s.distances) for s in bruck_substeps(nprocs, radix)]


def _predict_basic(machine: MachineProfile, nprocs: int, n: int,
                   use_datatypes: bool) -> UniformTiming:
    t = UniformTiming("basic_bruck_dt" if use_datatypes else "basic_bruck",
                      nprocs, n)
    if n == 0:
        return t
    t.initial_rotation = nprocs * machine.copy_time(n)
    for dist in _steps(nprocs):
        m = len(dist)
        if not m:
            continue
        if use_datatypes:
            t.communication += 2 * machine.datatype_time(m, m * n)
        else:
            t.communication += 2 * m * machine.copy_time(n)
        t.communication += _exchange(machine, nprocs, m * n)
    t.final_rotation = (machine.copy_time(nprocs * n)
                        + nprocs * machine.copy_time(n))
    return t


def _predict_modified(machine: MachineProfile, nprocs: int, n: int,
                      use_datatypes: bool, radix: int = 2) -> UniformTiming:
    t = UniformTiming(
        "modified_bruck_dt" if use_datatypes else "modified_bruck", nprocs, n)
    if n == 0:
        return t
    t.initial_rotation = nprocs * machine.copy_time(n)
    for dist in _steps(nprocs, radix):
        m = len(dist)
        if not m:
            continue
        if use_datatypes:
            t.communication += 2 * machine.datatype_time(m, m * n)
        else:
            t.communication += 2 * m * machine.copy_time(n)
        t.communication += _exchange(machine, nprocs, m * n)
    return t


def _predict_zero_copy_dt(machine: MachineProfile, nprocs: int,
                          n: int) -> UniformTiming:
    t = UniformTiming("zero_copy_bruck_dt", nprocs, n)
    if n == 0:
        return t
    t.initial_rotation = nprocs * machine.copy_time(n)
    for k, dist in enumerate(_steps(nprocs)):
        m = len(dist)
        if not m:
            continue
        # The step's block set splits between the R and T buffers by
        # remaining-hop parity; sender packs each non-empty part with one
        # datatype operation, receiver unpacks symmetrically.
        m_r = sum(1 for i in dist if (int(i) >> (k + 1)).bit_count() % 2 == 1)
        m_t = m - m_r
        for part in (m_r, m_t):
            if part:
                t.communication += 2 * machine.datatype_time(part, part * n)
        t.communication += _exchange(machine, nprocs, m * n)
    return t


def _predict_zero_rotation(machine: MachineProfile, nprocs: int,
                           n: int, radix: int = 2) -> UniformTiming:
    t = UniformTiming("zero_rotation_bruck", nprocs, n)
    if n == 0:
        return t
    t.index_setup = nprocs * _ROT_INDEX_COST_PER_PROC
    t.communication += machine.copy_time(n)  # self block
    for dist in _steps(nprocs, radix):
        m = len(dist)
        if not m:
            continue
        t.communication += 2 * m * machine.copy_time(n)
        t.communication += _exchange(machine, nprocs, m * n)
    return t


def _predict_spread_out(machine: MachineProfile, nprocs: int,
                        n: int) -> UniformTiming:
    t = UniformTiming("spread_out", nprocs, n)
    if n == 0:
        return t
    if nprocs == 1:
        t.communication = machine.copy_time(n)
        return t
    # Self copy, P-1 receive posts, then P-1 sends; the P-1 incoming
    # messages serialize at the receiver.  The waitall chain
    #   c_j = max(c_{j-1}, base + j*o_send + head) + serial
    # is linear in j inside the max, so its fixpoint is attained at the
    # endpoints j = 1 or j = P-1 (or the all-sends-posted start c_0).
    p = nprocs
    base = machine.copy_time(n) + (p - 1) * machine.o_recv
    c0 = base + (p - 1) * machine.o_send
    head = machine.head_latency(n)
    st = machine.serial_time(n, p)
    t.communication = max(
        c0 + (p - 1) * st,
        base + machine.o_send + head + (p - 1) * st,
        base + (p - 1) * machine.o_send + head + st,
    )
    return t


UNIFORM_PREDICTORS: Dict[str, Callable[[MachineProfile, int, int], UniformTiming]] = {
    "basic_bruck": lambda m, p, n: _predict_basic(m, p, n, False),
    "basic_bruck_dt": lambda m, p, n: _predict_basic(m, p, n, True),
    "modified_bruck":
        lambda m, p, n, radix=2: _predict_modified(m, p, n, False, radix),
    "modified_bruck_dt":
        lambda m, p, n, radix=2: _predict_modified(m, p, n, True, radix),
    "zero_copy_bruck_dt": _predict_zero_copy_dt,
    "zero_rotation_bruck":
        lambda m, p, n, radix=2: _predict_zero_rotation(m, p, n, radix),
    "spread_out": _predict_spread_out,
    "vendor": _predict_spread_out,
}


def predict_uniform(algorithm: str, machine: MachineProfile, nprocs: int,
                    block_nbytes: int, *, radix: int = 2) -> UniformTiming:
    """Predicted simulated time of one uniform all-to-all.

    Matches ``run_spmd`` + the functional algorithm exactly (same cost
    constants, same recurrence) — validated by tests at small ``P``.
    ``radix`` other than 2 is accepted only for the radix-capable kernels
    (``Algorithm.supports_radix``) and models their substep schedule.
    """
    # Resolve through the central registry so unknown names fail the same
    # way as the dispatchers do.
    algo = get_algorithm(algorithm, kind="uniform")
    name = algo.name
    try:
        fn = UNIFORM_PREDICTORS[name]
    except KeyError:
        raise KeyError(
            f"no analytic predictor for uniform algorithm {algorithm!r}; "
            f"predictable: {sorted(UNIFORM_PREDICTORS)}"
        ) from None
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    if radix != 2:
        if not algo.supports_radix:
            raise ValueError(
                f"algorithm {name!r} does not support radix {radix}")
        return fn(machine, nprocs, int(block_nbytes), radix=radix)
    return fn(machine, nprocs, int(block_nbytes))

"""Vectorized clock primitives for the analytic timing engine.

:mod:`repro.simmpi` executes algorithms with one thread per rank — exact,
but impractical beyond a few hundred ranks.  This module re-implements the
*same* cost rules (see ``MachineProfile`` and DESIGN.md §5) as NumPy
recurrences over per-rank clock arrays, so the paper's 32K-process sweeps
run in milliseconds.  Integration tests assert bit-equality between the two
engines at small ``P`` (exact mode), which pins every constant here to the
functional simulator.

The receive rule everywhere is the simulator's::

    clock = max(clock, depart + head_latency(n)) + serial_time(n, P)

i.e. messages serialize at the receiver — an all-to-all's ingress
bandwidth is a real resource, not infinitely parallel.

Conventions: ``clocks`` is a float64 array of shape ``(P,)`` holding each
rank's simulated clock; byte counts may be scalars or per-rank arrays.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..simmpi.machine import MachineProfile

__all__ = [
    "head_latency_vec",
    "serial_time_vec",
    "wire_time_vec",
    "copy_time_vec",
    "copy_time_blocks",
    "datatype_time_vec",
    "sendrecv_rounds",
    "bruck_step",
    "dissemination_allreduce_cost",
]

ArrayLike = Union[float, np.ndarray]


def head_latency_vec(machine: MachineProfile, nbytes: ArrayLike,
                     intra: ArrayLike = False) -> ArrayLike:
    """Vectorized ``MachineProfile.head_latency``.

    ``intra`` may be a scalar bool or a boolean array broadcastable against
    ``nbytes`` (per-message tier selection in the hierarchical model).
    """
    nbytes = np.asarray(nbytes, dtype=np.float64)
    a = np.where(intra, machine.alpha_intra, machine.alpha)
    return a * (1.0 + (nbytes > machine.eager_threshold))


def serial_time_vec(machine: MachineProfile, nbytes: ArrayLike,
                    nprocs: int, intra: ArrayLike = False) -> ArrayLike:
    """Vectorized ``MachineProfile.serial_time`` (piecewise eager tiering).

    The first ``eager_threshold`` bytes of every message pay the eager
    per-byte penalty; the remainder streams.  Uses the exact expression of
    the scalar method (same association order) so the two stay bit-equal.
    """
    nbytes = np.asarray(nbytes, dtype=np.float64)
    rate = np.where(intra, machine.beta_intra, machine.beta_eff(nprocs))
    factor = np.where(intra, machine.eager_factor_intra, machine.eager_factor)
    eager = np.minimum(nbytes, machine.eager_threshold)
    return rate * (factor * eager + (nbytes - eager))


def wire_time_vec(machine: MachineProfile, nbytes: ArrayLike,
                  nprocs: int, intra: ArrayLike = False) -> ArrayLike:
    """Vectorized end-to-end time of one isolated message."""
    return head_latency_vec(machine, nbytes, intra) \
        + serial_time_vec(machine, nbytes, nprocs, intra)


def copy_time_vec(machine: MachineProfile, nbytes: ArrayLike) -> ArrayLike:
    """Vectorized single-copy cost; zero-byte copies cost nothing,
    mirroring ``Communicator.charge_copy``'s early return."""
    nbytes = np.asarray(nbytes, dtype=np.float64)
    return np.where(nbytes > 0, machine.kappa_mem + machine.gamma_mem * nbytes,
                    0.0)


def copy_time_blocks(machine: MachineProfile, nblocks: ArrayLike,
                     total_bytes: ArrayLike) -> ArrayLike:
    """Cost of ``nblocks`` separate copies totalling ``total_bytes`` bytes
    (per-copy setup ``kappa`` paid once per block)."""
    nblocks = np.asarray(nblocks, dtype=np.float64)
    total_bytes = np.asarray(total_bytes, dtype=np.float64)
    return nblocks * machine.kappa_mem + machine.gamma_mem * total_bytes


def datatype_time_vec(machine: MachineProfile, nblocks: ArrayLike,
                      nbytes: ArrayLike) -> ArrayLike:
    """Vectorized ``MachineProfile.datatype_time``."""
    nblocks = np.asarray(nblocks, dtype=np.float64)
    nbytes = np.asarray(nbytes, dtype=np.float64)
    return np.where(nblocks > 0,
                    machine.dt_block * nblocks + machine.dt_byte * nbytes,
                    0.0)


def _exchange(clocks: np.ndarray, machine: MachineProfile, nprocs: int,
              src_index: np.ndarray, nbytes_out: ArrayLike) -> np.ndarray:
    """Shared isend → irecv → wait recurrence.

    Rank ``p`` receives the message sent by ``src_index[p]``, whose size is
    ``nbytes_out[src_index[p]]``::

        depart[p] = clocks[p] + o_send
        posted[p] = depart[p] + o_recv
        clocks[p] = max(posted[p],
                        depart[src] + head(n_src)) + serial(n_src)
    """
    p = len(clocks)
    depart = clocks + machine.o_send
    nbytes_out = np.broadcast_to(np.asarray(nbytes_out, dtype=np.float64),
                                 (p,))
    n_src = nbytes_out[src_index]
    head = depart[src_index] + head_latency_vec(machine, n_src)
    return np.maximum(depart + machine.o_recv, head) \
        + serial_time_vec(machine, n_src, nprocs)


def bruck_step(clocks: np.ndarray, machine: MachineProfile, nprocs: int,
               send_offset: int, nbytes_out: ArrayLike) -> np.ndarray:
    """One exchange in Bruck orientation: rank ``p`` sends to
    ``(p - send_offset) % P`` and receives from ``(p + send_offset) % P``."""
    src = (np.arange(len(clocks)) + send_offset) % nprocs
    return _exchange(clocks, machine, nprocs, src, nbytes_out)


def sendrecv_rounds(clocks: np.ndarray, machine: MachineProfile, nprocs: int,
                    send_offset: int, nbytes: float) -> np.ndarray:
    """One symmetric round in dissemination orientation: rank ``p`` sends
    to ``(p + send_offset) % P`` and receives from ``(p - send_offset) % P``
    (barrier / allreduce)."""
    src = (np.arange(len(clocks)) - send_offset) % nprocs
    return _exchange(clocks, machine, nprocs, src, nbytes)


def dissemination_allreduce_cost(clocks: np.ndarray, machine: MachineProfile,
                                 nprocs: int,
                                 payload_nbytes: float = 8.0) -> np.ndarray:
    """Clock effect of ``Communicator.allreduce(op="max"/"min")``:
    ``ceil(log2 P)`` dissemination rounds of an 8-byte scalar."""
    if nprocs == 1:
        return clocks.copy()
    out = clocks
    k = 1
    while k < nprocs:
        out = sendrecv_rounds(out, machine, nprocs, k, payload_nbytes)
        k <<= 1
    return out

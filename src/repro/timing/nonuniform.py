"""Analytic timing of the non-uniform algorithms at arbitrary scale.

Two evaluation modes:

* **exact** — materializes the full ``P×P`` block-size matrix and replays
  every cost the functional implementation charges, in program order,
  vectorized over ranks.  Bit-identical to ``run_spmd`` + the functional
  algorithm (asserted by integration tests); practical to ``P ≈ 4096``.
* **clt** — for the paper's 8K–32K sweeps: per-step per-rank byte totals
  are sampled from their exact aggregate distributions (a sum of ``m ≈ P/2``
  iid block sizes → Normal by the CLT; non-zero block counts → Binomial;
  the global max block → the ``P²``-sample max order statistic via inverse
  CDF).  The clock recurrence itself is unchanged.  Documented
  approximations: cross-step size correlations (a block keeps its size
  across hops) are ignored, and spread-out's completion maximum only
  examines the send offsets that can possibly win (offsets whose head
  start exceeds the largest possible wire time cannot).

Both modes share :mod:`repro.timing.engine`'s primitives, whose constants
are pinned to the functional simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np

from ..core.common import bruck_substeps
from ..core.registry import get_algorithm
from ..simmpi.machine import MachineProfile
from ..workloads.distributions import BlockSizeDistribution
from .engine import (
    bruck_step,
    copy_time_blocks,
    copy_time_vec,
    dissemination_allreduce_cost,
    head_latency_vec,
    serial_time_vec,
)

__all__ = ["TimingResult", "predict_alltoallv", "NONUNIFORM_PREDICTABLE"]

_ROT_INDEX_COST_PER_PROC = 1.0e-9  # matches the functional implementations
_META_ENTRY_BYTES = 4.0

NONUNIFORM_PREDICTABLE = (
    "two_phase_bruck", "padded_bruck", "padded_alltoall", "spread_out",
    "vendor",
)


@dataclass(frozen=True)
class TimingResult:
    """Predicted simulated makespan of one alltoallv invocation."""

    algorithm: str
    nprocs: int
    elapsed: float  # seconds, max over ranks
    mode: str       # "exact" | "clt"
    max_block: int  # the distribution's N parameter


def predict_alltoallv(algorithm: str, machine: MachineProfile, nprocs: int,
                      dist: BlockSizeDistribution, *, seed: int = 0,
                      mode: str = "auto", exact_limit: int = 2048,
                      radix: int = 2) -> TimingResult:
    """Predict the simulated time of ``algorithm`` on a random workload.

    Parameters
    ----------
    algorithm:
        One of ``two_phase_bruck``, ``padded_bruck``, ``padded_alltoall``,
        ``spread_out``, or ``vendor`` (alias of ``spread_out``, as vendor
        ``MPI_Alltoallv`` is spread-out based).
    dist:
        Block-size distribution; sizes are drawn iid per (src, dst) pair.
    mode:
        ``"exact"``, ``"clt"``, or ``"auto"`` (exact up to ``exact_limit``
        ranks, CLT beyond).
    radix:
        Bruck digit base; values other than 2 are accepted only for the
        radix-capable kernels (``two_phase_bruck``, ``padded_bruck``).
    """
    # Resolve through the central registry so unknown names fail the same
    # way as the dispatchers do; vendor MPI_Alltoallv is spread-out based.
    algo = get_algorithm(algorithm, kind="nonuniform")
    name = algo.name
    if name == "vendor":
        name = "spread_out"
    if name not in ("two_phase_bruck", "padded_bruck",
                    "padded_alltoall", "spread_out"):
        raise KeyError(
            f"no analytic predictor for {algorithm!r}; "
            f"predictable: {NONUNIFORM_PREDICTABLE}"
        )
    if radix != 2 and not algo.supports_radix:
        raise ValueError(
            f"algorithm {name!r} does not support radix {radix}")
    algorithm = name
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive, got {nprocs}")
    if mode == "auto":
        mode = "exact" if nprocs <= exact_limit else "clt"
    if mode not in ("exact", "clt"):
        raise ValueError(f"mode must be exact/clt/auto, got {mode!r}")

    if mode == "exact":
        rng = np.random.default_rng(seed)
        sizes = dist.sample(rng, nprocs * nprocs).reshape(nprocs, nprocs)
        fn = _EXACT[algorithm]
        elapsed = fn(machine, sizes, radix=radix) if radix != 2             else fn(machine, sizes)
    else:
        rng = np.random.default_rng(seed)
        fn = _CLT[algorithm]
        elapsed = fn(machine, nprocs, dist, rng, radix=radix) if radix != 2             else fn(machine, nprocs, dist, rng)
    return TimingResult(algorithm, nprocs, float(elapsed), mode,
                        dist.max_block)


# ----------------------------------------------------------------------
# exact mode
# ----------------------------------------------------------------------

def _two_phase_exact(machine: MachineProfile, sizes: np.ndarray,
                     radix: int = 2) -> float:
    p = sizes.shape[0]
    clocks = np.zeros(p)
    clocks = dissemination_allreduce_cost(clocks, machine, p)
    clocks = clocks + p * _ROT_INDEX_COST_PER_PROC
    if int(sizes.max(initial=0)) == 0:
        return float(clocks.max())
    clocks = clocks + copy_time_vec(machine, np.diagonal(sizes))
    ranks = np.arange(p)
    for sub in bruck_substeps(p, radix):
        dist_k = np.asarray(sub.distances, dtype=np.int64)
        m = len(dist_k)
        # metadata exchange
        clocks = bruck_step(clocks, machine, p, sub.jump,
                            _META_ENTRY_BYTES * m)
        # The block at working slot (i + rank) at step k originated at
        # source s = rank + (i mod r^k) and is destined for d = s - i;
        # its size therefore is sizes[s, d].
        low = dist_k % radix ** sub.step
        s = (ranks[:, None] + low[None, :]) % p
        d = (s - dist_k[None, :]) % p
        blk = sizes[s, d]
        bytes_out = blk.sum(axis=1).astype(np.float64)
        nz_out = (blk > 0).sum(axis=1).astype(np.float64)
        clocks = clocks + copy_time_blocks(machine, nz_out, bytes_out)  # pack
        clocks = bruck_step(clocks, machine, p, sub.jump, bytes_out)
        src = (ranks + sub.jump) % p
        clocks = clocks + copy_time_blocks(machine, nz_out[src],
                                           bytes_out[src])              # unpack
    return float(clocks.max())


def _padded_common_exact(machine: MachineProfile,
                         sizes: np.ndarray) -> tuple:
    """Shared pad phase: allreduce + per-block padding copies."""
    p = sizes.shape[0]
    clocks = np.zeros(p)
    clocks = dissemination_allreduce_cost(clocks, machine, p)
    max_n = int(sizes.max(initial=0))
    if max_n == 0:
        return clocks, 0
    row_nz = (sizes > 0).sum(axis=1).astype(np.float64)
    row_sum = sizes.sum(axis=1).astype(np.float64)
    clocks = clocks + copy_time_blocks(machine, row_nz, row_sum)
    return clocks, max_n


def _padded_scan_exact(machine: MachineProfile, sizes: np.ndarray,
                       clocks: np.ndarray) -> np.ndarray:
    col_nz = (sizes > 0).sum(axis=0).astype(np.float64)
    col_sum = sizes.sum(axis=0).astype(np.float64)
    return clocks + copy_time_blocks(machine, col_nz, col_sum)


def _uniform_zero_rotation_clocks(machine: MachineProfile, p: int,
                                  block_n: int, clocks: np.ndarray,
                                  radix: int = 2) -> np.ndarray:
    """Clock effect of zero-rotation Bruck over uniform blocks (vectorized
    because the entering clocks may already differ across ranks)."""
    clocks = clocks + p * _ROT_INDEX_COST_PER_PROC
    clocks = clocks + machine.copy_time(block_n)  # self block
    for sub in bruck_substeps(p, radix):
        m = len(sub.distances)
        clocks = clocks + m * machine.copy_time(block_n)
        clocks = bruck_step(clocks, machine, p, sub.jump,
                            float(m * block_n))
        clocks = clocks + m * machine.copy_time(block_n)
    return clocks


def _padded_bruck_exact(machine: MachineProfile, sizes: np.ndarray,
                        radix: int = 2) -> float:
    p = sizes.shape[0]
    clocks, max_n = _padded_common_exact(machine, sizes)
    if max_n == 0:
        return float(clocks.max())
    clocks = _uniform_zero_rotation_clocks(machine, p, max_n, clocks, radix)
    clocks = _padded_scan_exact(machine, sizes, clocks)
    return float(clocks.max())


def _vendor_alltoall_clocks(machine: MachineProfile, p: int, block_n: int,
                            clocks: np.ndarray) -> np.ndarray:
    """Clock effect of the builtin (spread-out) uniform alltoall.

    The P-1 incoming messages are retired in posting order (offset 1 …
    P-1); each serializes at the receiver per the simulator's receive
    rule.
    """
    clocks = clocks + machine.copy_time(block_n)
    base = clocks + (p - 1) * machine.o_recv
    if p == 1:
        return base
    head = machine.head_latency(block_n)
    st = machine.serial_time(block_n, p)
    ranks = np.arange(p)
    c = base + (p - 1) * machine.o_send  # all sends posted
    for off in range(1, p):
        src = (ranks - off) % p
        c = np.maximum(c, base[src] + off * machine.o_send + head) + st
    return c


def _padded_alltoall_exact(machine: MachineProfile,
                           sizes: np.ndarray) -> float:
    p = sizes.shape[0]
    clocks, max_n = _padded_common_exact(machine, sizes)
    if max_n == 0:
        return float(clocks.max())
    clocks = _vendor_alltoall_clocks(machine, p, max_n, clocks)
    clocks = _padded_scan_exact(machine, sizes, clocks)
    return float(clocks.max())


def _spread_out_exact(machine: MachineProfile, sizes: np.ndarray) -> float:
    p = sizes.shape[0]
    clocks = np.zeros(p)
    clocks = clocks + copy_time_vec(machine, np.diagonal(sizes))
    if p == 1:
        return float(clocks.max())
    base = clocks + (p - 1) * machine.o_recv
    ranks = np.arange(p)
    c = base + (p - 1) * machine.o_send
    for off in range(1, p):
        src = (ranks - off) % p
        nb = sizes[src, ranks]
        c = np.maximum(c, base[src] + off * machine.o_send
                       + head_latency_vec(machine, nb)) \
            + serial_time_vec(machine, nb, p)
    return float(c.max())


_EXACT = {
    "two_phase_bruck": _two_phase_exact,
    "padded_bruck": _padded_bruck_exact,
    "padded_alltoall": _padded_alltoall_exact,
    "spread_out": _spread_out_exact,
}


# ----------------------------------------------------------------------
# CLT mode
# ----------------------------------------------------------------------

def _prob_zero(dist: BlockSizeDistribution) -> float:
    """P(block size == 0) — needed for the Binomial non-zero-block count."""
    pmf = getattr(dist, "_pmf", None)
    if pmf is not None:
        return float(pmf[0])
    low = getattr(dist, "low", 0)
    if low > 0:
        return 0.0
    return 1.0 / (dist.max_block + 1)  # discrete uniform on {0..N}


def _sample_sums(rng: np.random.Generator, count: int, m: int,
                 dist: BlockSizeDistribution) -> np.ndarray:
    """Sample ``count`` sums of ``m`` iid block sizes (CLT, clipped)."""
    if m == 0:
        return np.zeros(count)
    mu, var = dist.mean, dist.variance
    sums = rng.normal(m * mu, math.sqrt(max(m * var, 0.0)), size=count)
    return np.clip(sums, 0.0, float(m * dist.max_block))


def _sample_max_block(rng: np.random.Generator, dist: BlockSizeDistribution,
                      count: int) -> int:
    """Max order statistic of ``count`` iid draws via inverse CDF."""
    if dist.max_block == 0:
        return 0
    u = rng.random() ** (1.0 / count)
    cdf = getattr(dist, "_cdf", None)
    if cdf is not None:
        return int(np.searchsorted(cdf, u, side="right"))
    low = getattr(dist, "low", 0)
    span = dist.max_block - low + 1
    return int(low + min(span - 1, math.floor(u * span)))


def _two_phase_clt(machine: MachineProfile, p: int,
                   dist: BlockSizeDistribution,
                   rng: np.random.Generator, radix: int = 2) -> float:
    clocks = np.zeros(p)
    clocks = dissemination_allreduce_cost(clocks, machine, p)
    clocks = clocks + p * _ROT_INDEX_COST_PER_PROC
    if dist.max_block == 0:
        return float(clocks.max())
    clocks = clocks + copy_time_vec(machine, dist.sample(rng, p))
    q_nz = 1.0 - _prob_zero(dist)
    ranks = np.arange(p)
    for sub in bruck_substeps(p, radix):
        m = len(sub.distances)
        clocks = bruck_step(clocks, machine, p, sub.jump,
                            _META_ENTRY_BYTES * m)
        bytes_out = _sample_sums(rng, p, m, dist)
        nz_out = rng.binomial(m, q_nz, size=p).astype(np.float64)
        clocks = clocks + copy_time_blocks(machine, nz_out, bytes_out)
        clocks = bruck_step(clocks, machine, p, sub.jump, bytes_out)
        src = (ranks + sub.jump) % p
        clocks = clocks + copy_time_blocks(machine, nz_out[src],
                                           bytes_out[src])
    return float(clocks.max())


def _padded_phases_clt(machine: MachineProfile, p: int,
                       dist: BlockSizeDistribution,
                       rng: np.random.Generator) -> tuple:
    clocks = np.zeros(p)
    clocks = dissemination_allreduce_cost(clocks, machine, p)
    max_n = _sample_max_block(rng, dist, p * p)
    if max_n == 0:
        return clocks, 0
    q_nz = 1.0 - _prob_zero(dist)
    row_nz = rng.binomial(p, q_nz, size=p).astype(np.float64)
    row_sum = _sample_sums(rng, p, p, dist)
    clocks = clocks + copy_time_blocks(machine, row_nz, row_sum)
    return clocks, max_n


def _padded_scan_clt(machine: MachineProfile, p: int,
                     dist: BlockSizeDistribution, rng: np.random.Generator,
                     clocks: np.ndarray) -> np.ndarray:
    q_nz = 1.0 - _prob_zero(dist)
    col_nz = rng.binomial(p, q_nz, size=p).astype(np.float64)
    col_sum = _sample_sums(rng, p, p, dist)
    return clocks + copy_time_blocks(machine, col_nz, col_sum)


def _padded_bruck_clt(machine: MachineProfile, p: int,
                      dist: BlockSizeDistribution,
                      rng: np.random.Generator, radix: int = 2) -> float:
    clocks, max_n = _padded_phases_clt(machine, p, dist, rng)
    if max_n == 0:
        return float(clocks.max())
    clocks = _uniform_zero_rotation_clocks(machine, p, max_n, clocks, radix)
    clocks = _padded_scan_clt(machine, p, dist, rng, clocks)
    return float(clocks.max())


def _padded_alltoall_clt(machine: MachineProfile, p: int,
                         dist: BlockSizeDistribution,
                         rng: np.random.Generator) -> float:
    clocks, max_n = _padded_phases_clt(machine, p, dist, rng)
    if max_n == 0:
        return float(clocks.max())
    # Spread-out exchange over uniform blocks.  The waitall chain
    # c_j = max(c_{j-1}, base_src + j*o_send + head) + serial is linear in
    # j inside the max, so only the endpoints (j = 1, j = P-1) and the
    # all-sends-posted start can attain the fixpoint.  Entering clocks
    # differ only by per-rank pad costs, so we take the sender base from
    # the true neighbour ranks (approximation documented in the module
    # docstring).
    clocks = clocks + machine.copy_time(max_n)
    base = clocks + (p - 1) * machine.o_recv
    if p > 1:
        head = machine.head_latency(max_n)
        st = machine.serial_time(max_n, p)
        c0 = base + (p - 1) * machine.o_send
        cand1 = np.roll(base, 1) + machine.o_send + head + (p - 1) * st
        cand2 = np.roll(base, -1) + (p - 1) * machine.o_send + head + st
        clocks = np.maximum.reduce([c0 + (p - 1) * st, cand1, cand2])
    else:
        clocks = base
    clocks = _padded_scan_clt(machine, p, dist, rng, clocks)
    return float(clocks.max())


def _serial_moments(machine: MachineProfile, dist: BlockSizeDistribution,
                    p: int) -> tuple:
    """Mean and variance of one message's serial (transfer) time."""
    beta = machine.beta_eff(p)
    thr = machine.eager_threshold
    ef = machine.eager_factor
    pmf = getattr(dist, "_pmf", None)
    if pmf is not None:
        x = np.arange(dist.max_block + 1, dtype=np.float64)
        eager = np.minimum(x, thr)
        s = beta * (ef * eager + (x - eager))
        mean = float((s * pmf).sum())
        var = float(((s - mean) ** 2 * pmf).sum())
        return mean, var
    if dist.max_block <= thr:
        # Every block is on the eager path, where the piecewise charge is
        # the pure linear form beta * ef * n.
        scale = beta * ef
        return scale * dist.mean, scale * scale * dist.variance
    # Mixed regime without a tabulated pmf: fall back to a small sample.
    sample = np.random.default_rng(0).integers(0, dist.max_block + 1, 4096)
    eager = np.minimum(sample, thr).astype(np.float64)
    s = beta * (ef * eager + (sample - eager))
    return float(s.mean()), float(s.var())


def _spread_out_clt(machine: MachineProfile, p: int,
                    dist: BlockSizeDistribution,
                    rng: np.random.Generator) -> float:
    clocks = np.zeros(p)
    clocks = clocks + copy_time_vec(machine, dist.sample(rng, p))
    if p == 1:
        return float(clocks.max())
    base = clocks + (p - 1) * machine.o_recv
    # The waitall chain's fixpoint is attained near an endpoint of
    #   a_j + sum_{i>=j} serial_i,  a_j = base + j*o_send + head.
    # The serial tail sums are sampled via the CLT from the per-message
    # serial-time moments.
    s_mean, s_var = _serial_moments(machine, dist, p)
    total_serial = np.clip(
        rng.normal((p - 1) * s_mean, math.sqrt(max((p - 1) * s_var, 0.0)),
                   size=p),
        0.0, None)
    head = float(head_latency_vec(machine, dist.mean))
    c0 = base + (p - 1) * machine.o_send
    cand_first = np.roll(base, 1) + machine.o_send + head + total_serial
    last_serial = serial_time_vec(machine, dist.sample(rng, p), p)
    cand_last = np.roll(base, -1) + (p - 1) * machine.o_send + head \
        + last_serial
    best = np.maximum.reduce([c0 + total_serial, cand_first, cand_last])
    return float(best.max())


_CLT = {
    "two_phase_bruck": _two_phase_clt,
    "padded_bruck": _padded_bruck_clt,
    "padded_alltoall": _padded_alltoall_clt,
    "spread_out": _spread_out_clt,
}

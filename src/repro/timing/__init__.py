"""Analytic timing engine: the paper's figures at up to 32K simulated ranks.

``predict_uniform`` covers the Fig. 2 variants; ``predict_alltoallv``
covers the non-uniform algorithms of Figs. 6-10/13.  Both share the cost
constants of :mod:`repro.simmpi` and are validated against it bit-for-bit
at small ``P`` (exact mode).
"""

from .engine import (
    bruck_step,
    copy_time_blocks,
    copy_time_vec,
    datatype_time_vec,
    dissemination_allreduce_cost,
    sendrecv_rounds,
    wire_time_vec,
)
from .nonuniform import NONUNIFORM_PREDICTABLE, TimingResult, predict_alltoallv
from .uniform import UNIFORM_PREDICTORS, UniformTiming, predict_uniform

__all__ = [
    "predict_uniform",
    "UniformTiming",
    "UNIFORM_PREDICTORS",
    "predict_alltoallv",
    "TimingResult",
    "NONUNIFORM_PREDICTABLE",
    "wire_time_vec",
    "copy_time_vec",
    "copy_time_blocks",
    "datatype_time_vec",
    "bruck_step",
    "sendrecv_rounds",
    "dissemination_allreduce_cost",
]

"""Application-figure drivers: Fig. 11 (TC) and Fig. 12 (kCFA).

Scaled-down functional reproductions: the paper runs these at 256–4096
ranks on Theta; the thread-based simulator runs the same code at 8–64
ranks (the divergence-driving property — per-iteration all-to-all load —
is preserved by the workload generators; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..simmpi.machine import THETA, MachineProfile
from .graphs import graph1, graph2
from .kcfa.analysis import KCFAResult, run_kcfa
from .kcfa.generator import kcfa_worstcase
from .transitive_closure import TCResult, run_transitive_closure

__all__ = ["fig11_tc_strong_scaling", "fig12_kcfa", "Fig12Data"]


def fig11_tc_strong_scaling(
    procs: Sequence[int] = (8, 16, 32, 64),
    machine: MachineProfile = THETA,
    algorithms: Sequence[str] = ("vendor", "two_phase_bruck"),
    graph_scale: float = 1.0,
) -> Dict[str, Dict[int, Dict[str, TCResult]]]:
    """Fig. 11: TC strong scaling on the two graph archetypes.

    Returns ``{graph_name: {P: {algorithm: TCResult}}}``.  The paper's
    qualitative claims: two-phase improves Graph 1 (improvement growing
    with P) and *hurts* Graph 2.
    """
    graphs = {"graph1": graph1(graph_scale), "graph2": graph2(graph_scale)}
    out: Dict[str, Dict[int, Dict[str, TCResult]]] = {}
    for name, edges in graphs.items():
        out[name] = {}
        for p in procs:
            out[name][p] = {
                alg: run_transitive_closure(edges, p, machine=machine,
                                            algorithm=alg)
                for alg in algorithms
            }
    return out


@dataclass
class Fig12Data:
    """Fig. 12's two panels: per-iteration comm time (both algorithms)
    and per-iteration max block size N."""

    results: Dict[str, KCFAResult]  # algorithm -> result

    @property
    def iterations(self) -> int:
        return next(iter(self.results.values())).iterations

    def comm_series(self, algorithm: str) -> List[float]:
        return [r["comm_seconds"]
                for r in self.results[algorithm].per_iteration]

    def n_series(self) -> List[int]:
        any_result = next(iter(self.results.values()))
        return [r["max_block_bytes"] for r in any_result.per_iteration]

    def wins(self, algorithm: str, over: str) -> int:
        """Iterations where ``algorithm``'s comm was strictly faster."""
        a = self.comm_series(algorithm)
        b = self.comm_series(over)
        return sum(1 for x, y in zip(a, b) if x < y)


def fig12_kcfa(nprocs: int = 32, k: int = 8,
               machine: MachineProfile = THETA,
               n_payloads: int = 6, chain_len: int = 12,
               entries: int = 1) -> Fig12Data:
    """Fig. 12: kCFA-8 per-iteration comm time and N, vendor vs two-phase.

    Both runs analyze the identical program, so the iteration count and
    the N series coincide; only the comm times differ.
    """
    program = kcfa_worstcase(n_payloads, chain_len)
    results = {
        alg: run_kcfa(program, k, nprocs, machine=machine, algorithm=alg,
                      entries=entries)
        for alg in ("vendor", "two_phase_bruck")
    }
    iters = {alg: r.iterations for alg, r in results.items()}
    if len(set(iters.values())) != 1:
        raise AssertionError(f"iteration counts diverged: {iters}")
    return Fig12Data(results=results)

"""k-CFA program analysis application (paper Section 5.2)."""

from .analysis import KCFAResult, kcfa_rank, run_kcfa, sequential_kcfa
from .generator import (
    chain_program,
    funnel_program,
    kcfa_worstcase,
    merge_loop_program,
    random_program,
)
from .syntax import Call, Lam, Program, Var, pack_contour, push_contour, unpack_contour

__all__ = [
    "Call",
    "Lam",
    "Var",
    "Program",
    "pack_contour",
    "push_contour",
    "unpack_contour",
    "merge_loop_program",
    "chain_program",
    "random_program",
    "funnel_program",
    "kcfa_worstcase",
    "kcfa_rank",
    "run_kcfa",
    "sequential_kcfa",
    "KCFAResult",
]

"""CPS lambda-calculus core for the kCFA workload (paper §5.2).

The analysis operates on continuation-passing-style programs made of two
forms — lambdas and calls — the shape used throughout the k-CFA literature
(Van Horn & Mairson [40] define their EXPTIME-hardness witnesses in the
same core).

To keep the *distributed* analysis joins local (see
:mod:`repro.apps.kcfa.analysis`), programs are restricted to a
**closure-free** core: every variable referenced by a call is a parameter
of the immediately enclosing lambda.  Abstract values are then plain
lambda labels (no captured environments), and all store lookups a state
needs are owned by the state's own contour.  This preserves the paper's
*communication* structure — thousands of fixed-point iterations with
swinging all-to-all loads — which is what Fig. 12 measures; DESIGN.md
documents the substitution.

Labels are small consecutive ints; contours (call strings of length ≤ k)
pack into one int64 with ``CONTOUR_BITS`` bits per label, so facts travel
as fixed-arity int tuples through the BPRA exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Var", "Lam", "Call", "Program", "CONTOUR_BITS", "MAX_LABEL",
           "pack_contour", "push_contour", "unpack_contour"]

#: Bits per call label inside a packed contour.  7 bits × k=8 contour
#: entries = 56 bits < 63, so kCFA-8 contours fit a non-negative int64.
#: Labels are stored offset by one (so an empty slot is distinguishable
#: from label 0), hence the usable label range is [0, 2**7 - 2].
CONTOUR_BITS = 7
MAX_LABEL = (1 << CONTOUR_BITS) - 2  # 126


@dataclass(frozen=True)
class Var:
    """A variable reference (must be a parameter of the enclosing lambda)."""

    name: str


@dataclass(frozen=True)
class Lam:
    """``λ (params...) body`` — body is a single CPS call (or None: halt)."""

    label: int
    params: Tuple[str, ...]
    body: Optional["Call"]


@dataclass(frozen=True)
class Call:
    """``(fn arg1 ... argn)`` — fn/args are variables or literal lambdas."""

    label: int
    fn: Union[Var, Lam]
    args: Tuple[Union[Var, Lam], ...]


@dataclass
class Program:
    """A whole CPS program: the root call plus a label → lambda registry."""

    root: Call
    lambdas: Dict[int, Lam] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._validate()

    def _collect(self) -> Tuple[List[Call], List[Lam]]:
        calls: List[Call] = []
        lams: List[Lam] = []
        stack: List[Union[Call, Lam]] = [self.root]
        seen = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, Call):
                calls.append(node)
                stack.append(node.fn) if isinstance(node.fn, Lam) else None
                for a in node.args:
                    if isinstance(a, Lam):
                        stack.append(a)
            elif isinstance(node, Lam):
                lams.append(node)
                if node.body is not None:
                    stack.append(node.body)
        return calls, lams

    def _validate(self) -> None:
        calls, lams = self._collect()
        for lam in lams:
            if lam.label > MAX_LABEL:
                raise ValueError(
                    f"lambda label {lam.label} exceeds MAX_LABEL "
                    f"({MAX_LABEL}); shrink the program")
            self.lambdas.setdefault(lam.label, lam)
        labels = [c.label for c in calls]
        if labels and max(labels) > MAX_LABEL:
            raise ValueError(
                f"call label {max(labels)} exceeds MAX_LABEL ({MAX_LABEL})")
        # Closure-free check: every Var in a call body must be a parameter
        # of the enclosing lambda.
        for lam in lams:
            if lam.body is None:
                continue
            scope = set(lam.params)
            for item in (lam.body.fn, *lam.body.args):
                if isinstance(item, Var) and item.name not in scope:
                    raise ValueError(
                        f"free variable {item.name!r} in lambda "
                        f"{lam.label}: the closure-free core requires all "
                        f"call operands to be parameters of the enclosing "
                        f"lambda")

    @property
    def size(self) -> int:
        calls, lams = self._collect()
        return len(calls) + len(lams)


# ----------------------------------------------------------------------
# contour packing
# ----------------------------------------------------------------------

def pack_contour(labels: Sequence[int]) -> int:
    """Pack up to 8 call labels (most-recent first) into one int64."""
    if len(labels) > 8:
        raise ValueError(f"contours longer than 8 unsupported, got {len(labels)}")
    code = 0
    for lab in labels:
        if not 0 <= lab <= MAX_LABEL:
            raise ValueError(f"label {lab} out of contour range")
        # +1 so that the empty slot (0) is distinguishable from label 0.
        code = (code << CONTOUR_BITS) | (lab + 1)
    return code


def unpack_contour(code: int) -> List[int]:
    """Inverse of :func:`pack_contour` (most-recent label first)."""
    mask = (1 << CONTOUR_BITS) - 1
    out: List[int] = []
    while code:
        out.append((code & mask) - 1)
        code >>= CONTOUR_BITS
    out.reverse()
    return out


def push_contour(code: int, call_label: int, k: int) -> int:
    """New contour: prepend ``call_label``, truncate to the ``k`` most
    recent labels (k = 0 gives the monovariant empty contour)."""
    if k == 0:
        return 0
    labels = unpack_contour(code)
    labels = [call_label] + labels
    return pack_contour(labels[:k])

"""Distributed k-CFA abstract interpreter over BPRA (paper §5.2, Fig. 12).

Abstract domain (closure-free CPS core, see :mod:`.syntax`):

* an abstract **value** is a lambda label;
* a **variable** is identified by ``(lambda label, parameter index)``;
* a **contour** is the packed string of the last ``k`` call labels;
* the **store** maps ``(variable, contour)`` to a set of values;
* a **state** ``(lambda, contour)`` means that lambda's body call is
  reachable under that contour.

Both fact kinds are keyed by their contour, so every store lookup a state
needs is owned by the state's own rank — the joins of the analysis are
local and only the *derived* facts travel, through one non-uniform
all-to-all per fixed-point iteration (the paper's structure: "an
all-to-all exchange propagates analysis facts to their managing process").

Fact encoding (int tuples, arity 5, key column 2 = contour):

* bind: ``(0, var_code, contour, value_label, 0)`` with
  ``var_code = lam_label * 64 + param_index``;
* reach: ``(1, lam_label, contour, 0, 0)``.

Semi-naive refiring: a new *reach* fact fires its state's transition; a
new *bind* fact refires the already-reachable state it feeds (its operand
sets just grew).  Duplicated products are deduped on arrival by the BPRA
relation, exactly like the TC application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ...bpra.fixpoint import FixpointResult, run_fixpoint
from ...bpra.relation import LocalRelation, hash_owner
from ...simmpi.communicator import Communicator
from ...simmpi.executor import run_spmd
from ...simmpi.machine import LOCAL, MachineProfile
from .syntax import MAX_LABEL, Lam, Program, pack_contour, push_contour

__all__ = ["KCFAResult", "kcfa_rank", "run_kcfa", "sequential_kcfa"]

IntTuple = Tuple[int, ...]

_BIND, _REACH = 0, 1
_ROOT_LABEL = 0        # pseudo-lambda wrapping the program's root call
_MAX_PARAMS = 64       # var_code = lam_label * 64 + param_index

_FIRE_COST = 1.2e-7    # simulated CPU per fired state transition
_PRODUCT_COST = 5.0e-8  # simulated CPU per produced fact


def _registry(program: Program) -> Dict[int, Lam]:
    lams = dict(program.lambdas)
    if _ROOT_LABEL in lams:
        raise ValueError("lambda label 0 is reserved for the root")
    lams[_ROOT_LABEL] = Lam(label=_ROOT_LABEL, params=(),
                            body=program.root)
    for lam in lams.values():
        if len(lam.params) > _MAX_PARAMS:
            raise ValueError(
                f"lambda {lam.label} has {len(lam.params)} params; the "
                f"fact encoding supports at most {_MAX_PARAMS}")
    return lams


class _LocalState:
    """One rank's store/reach indexes plus the transition function."""

    def __init__(self, lams: Dict[int, Lam], k: int) -> None:
        self.lams = lams
        self.k = k
        self.store: Dict[Tuple[int, int], Set[int]] = {}
        self.reach: Set[Tuple[int, int]] = set()

    def absorb(self, fact: IntTuple) -> List[Tuple[int, int]]:
        """Index one fact; return the states it makes fireable."""
        kind = fact[0]
        if kind == _REACH:
            state = (fact[1], fact[2])
            self.reach.add(state)
            return [state]
        var_code, ctx, value = fact[1], fact[2], fact[3]
        self.store.setdefault((var_code, ctx), set()).add(value)
        owner_lam = var_code // _MAX_PARAMS
        state = (owner_lam, ctx)
        return [state] if state in self.reach else []

    def _values(self, lam: Lam, ctx: int, item) -> Set[int]:
        if isinstance(item, Lam):
            return {item.label}
        idx = lam.params.index(item.name)
        return self.store.get((lam.label * _MAX_PARAMS + idx, ctx), set())

    def fire(self, state: Tuple[int, int]) -> List[IntTuple]:
        """All facts derivable from one reachable state right now."""
        lam_label, ctx = state
        lam = self.lams[lam_label]
        body = lam.body
        if body is None:
            return []
        fn_vals = self._values(lam, ctx, body.fn)
        arg_vals = [self._values(lam, ctx, a) for a in body.args]
        out: List[IntTuple] = []
        for callee_label in fn_vals:
            callee = self.lams.get(callee_label)
            if callee is None or callee_label == _ROOT_LABEL:
                continue
            ctx2 = push_contour(ctx, body.label, self.k)
            out.append((_REACH, callee_label, ctx2, 0, 0))
            for i, _param in enumerate(callee.params):
                if i >= len(arg_vals):
                    break  # under-application: parameter stays unbound
                code = callee_label * _MAX_PARAMS + i
                for v in arg_vals[i]:
                    out.append((_BIND, code, ctx2, v, 0))
        return out


@dataclass
class KCFAResult:
    """Aggregated outcome of a distributed kCFA run."""

    nprocs: int
    k: int
    algorithm: str
    total_facts: int
    iterations: int
    elapsed_seconds: float
    comm_seconds: float
    per_iteration: List[Dict]


def _entry_seeds(entries: int, k: int) -> List[IntTuple]:
    """Seed reach facts: one per analysis entry point.

    Entry ``e > 0`` starts under a synthetic contour ``[MAX_LABEL - e]``
    (as if the program were invoked from ``e`` distinct external call
    sites) — the standard multi-entry setup, and the lever that scales the
    Fig. 12 workload.
    """
    if entries < 1:
        raise ValueError(f"entries must be >= 1, got {entries}")
    seeds: List[IntTuple] = [(_REACH, _ROOT_LABEL, 0, 0, 0)]
    for e in range(1, entries):
        ctx = pack_contour([MAX_LABEL - e]) if k > 0 else 0
        seeds.append((_REACH, _ROOT_LABEL, ctx, 0, 0))
    return seeds


def kcfa_rank(comm: Communicator, program: Program, k: int, *,
              algorithm: str = "two_phase_bruck",
              entries: int = 1) -> FixpointResult:
    """One rank's SPMD body: run the k-CFA fixed point collectively."""
    if k < 0 or k > 8:
        raise ValueError(f"k must be in [0, 8], got {k}")
    lams = _registry(program)
    local = _LocalState(lams, k)
    facts = LocalRelation(arity=5, key_column=2)

    seed_delta: List[IntTuple] = []
    for seed_fact in _entry_seeds(entries, k):
        if hash_owner(seed_fact[2], comm.size) == comm.rank:
            facts.add(seed_fact)
            seed_delta.append(seed_fact)

    def rule(delta: List[IntTuple]) -> Dict[int, List[IntTuple]]:
        fire_set: Set[Tuple[int, int]] = set()
        for fact in delta:
            fire_set.update(local.absorb(fact))
        outgoing: Dict[int, List[IntTuple]] = {}
        produced = 0
        for state in fire_set:
            for fact in local.fire(state):
                produced += 1
                outgoing.setdefault(
                    hash_owner(fact[2], comm.size), []).append(fact)
        comm.charge_compute(len(fire_set) * _FIRE_COST
                            + produced * _PRODUCT_COST)
        return outgoing

    return run_fixpoint(comm, facts, seed_delta, rule, algorithm=algorithm)


def run_kcfa(program: Program, k: int, nprocs: int, *,
             machine: MachineProfile = LOCAL,
             algorithm: str = "two_phase_bruck",
             entries: int = 1,
             timeout: float = 600.0) -> KCFAResult:
    """Launch the SPMD kCFA job and aggregate Fig. 12's per-iteration
    series (comm time and max block size ``N``)."""
    result = run_spmd(
        lambda comm: kcfa_rank(comm, program, k, algorithm=algorithm,
                               entries=entries),
        nprocs, machine=machine, trace=False, timeout=timeout)
    fixpoints: List[FixpointResult] = result.returns
    iterations = fixpoints[0].iterations
    per_iteration: List[Dict] = []
    for i in range(iterations):
        records = [f.history[i] for f in fixpoints]
        per_iteration.append({
            "iteration": i + 1,
            "comm_seconds": max(r.comm_seconds for r in records),
            "max_block_bytes": records[0].max_block_bytes,
            "new_tuples": sum(r.new_tuples for r in records),
        })
    return KCFAResult(
        nprocs=nprocs, k=k, algorithm=algorithm,
        total_facts=sum(len(f.relation) for f in fixpoints),
        iterations=iterations,
        elapsed_seconds=result.elapsed,
        comm_seconds=max(f.total_comm_seconds for f in fixpoints),
        per_iteration=per_iteration,
    )


def sequential_kcfa(program: Program, k: int,
                    entries: int = 1) -> Set[IntTuple]:
    """Single-process reference: the fixed point as a plain worklist.

    Returns the complete fact set; tests check the distributed run derives
    exactly the same facts.
    """
    lams = _registry(program)
    local = _LocalState(lams, k)
    all_facts: Set[IntTuple] = set(_entry_seeds(entries, k))
    worklist: List[IntTuple] = list(all_facts)
    while worklist:
        fact = worklist.pop()
        for state in local.absorb(fact):
            for new in local.fire(state):
                if new not in all_facts:
                    all_facts.add(new)
                    worklist.append(new)
    return all_facts

"""Workload generators for the kCFA experiment (paper §5.2).

The paper generates its kCFA-8 inputs with the worst-case construction of
Van Horn & Mairson [40], whose essence is *merged control flow*: distinct
call paths that collapse onto the same (k-truncated) contour, joining
their bindings so operator sets — and hence the abstract state frontier —
multiply.  Two closure-free generators capture the two regimes:

* :func:`merge_loop_program` — ``width`` mutually-recursive lambdas whose
  bodies invoke a rotated view of the candidate set, so different callers
  bind different lambdas at the same parameter position.  Once contour
  truncation makes call paths collide, bindings join and the exploration
  frontier balloons before saturating — the bursty per-iteration
  all-to-all load of Fig. 12.
* :func:`chain_program` — a terminating continuation chain with singleton
  flows; a minimal smoke-test workload.

Both emit programs in the closure-free CPS core of
:mod:`repro.apps.kcfa.syntax`.
"""

from __future__ import annotations

from typing import List

from .syntax import Call, Lam, Program, Var

__all__ = ["merge_loop_program", "chain_program", "random_program",
           "funnel_program", "kcfa_worstcase"]


def merge_loop_program(width: int = 2) -> Program:
    """``width`` mutually-recursive lambdas with rotating argument flow.

    ``L_j = λ(p_0 … p_{w-1}). (p_{(j+1) mod w}  p_1 … p_{w-1} p_0)`` —
    each lambda invokes the *next* parameter position and forwards its
    parameter tuple rotated by one.  Different call paths therefore bind
    different lambdas at the same parameter position; when k-truncated
    contours collide, those bindings join, operator sets grow, and the
    exploration frontier multiplies — the Van Horn–Mairson merge effect.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    label = iter(range(1, 1 << 14))
    params = tuple(f"p{i}" for i in range(width))
    rotated = params[1:] + params[:1]
    lams: List[Lam] = []
    for j in range(width):
        body = Call(label=next(label), fn=Var(params[(j + 1) % width]),
                    args=tuple(Var(q) for q in rotated))
        lams.append(Lam(label=next(label), params=params, body=body))
    dispatcher = Lam(label=next(label), params=params,
                     body=Call(label=next(label), fn=Var(params[0]),
                               args=tuple(Var(q) for q in params)))
    root = Call(label=next(label), fn=dispatcher, args=tuple(lams))
    return Program(root=root)


def chain_program(depth: int = 8) -> Program:
    """A terminating continuation chain: ``L_i`` calls its parameter with
    the literal ``L_{i+2}`` as the next continuation; the last two lambdas
    halt.  Singleton flows, ``~depth`` fixed-point iterations."""
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    label = iter(range(1, 1 << 14))
    halt_a = Lam(label=next(label), params=("h",), body=None)
    halt_b = Lam(label=next(label), params=("h",), body=None)
    lams: List[Lam] = [halt_a, halt_b]  # built back to front
    for _ in range(depth):
        nxt = lams[-2]
        body = Call(label=next(label), fn=Var("c"), args=(nxt,))
        lams.append(Lam(label=next(label), params=("c",), body=body))
    first, second = lams[-1], lams[-2]
    root = Call(label=next(label), fn=first, args=(second,))
    return Program(root=root)


def random_program(n_lambdas: int = 40, arity: int = 3,
                   literal_prob: float = 0.4, seed: int = 0) -> Program:
    """A large randomized closure-free CPS program.

    Each lambda's body invokes a random parameter with a random mixture of
    parameters and *literal* lambdas as arguments.  The literals inject
    fresh values at many call sites, so the abstract walk fans out over a
    call graph with hundreds of ``(lambda, contour)`` states and a frontier
    whose width — and therefore the per-iteration all-to-all load — swings
    from iteration to iteration, the behaviour Fig. 12 plots.  A few
    parameter-less halt lambdas bound the walk.

    Deterministic in ``seed``.  Label count is bounded by the contour
    packing (see :mod:`.syntax`), which caps ``n_lambdas`` around 55.
    """
    import numpy as np  # local import keeps the module lightweight

    if n_lambdas < 2:
        raise ValueError("need at least 2 lambdas")
    if arity < 1:
        raise ValueError("arity must be >= 1")
    rng = np.random.default_rng(seed)
    label = iter(range(1, 1 << 14))
    params = tuple(f"p{i}" for i in range(arity))

    # Two-pass construction: reserve labels, then wire random bodies that
    # may reference any lambda as a literal argument.
    lam_labels = [next(label) for _ in range(n_lambdas)]
    n_halt = max(1, n_lambdas // 10)
    bodies: List[Call] = []
    placeholder: List[Lam] = [
        Lam(label=lab, params=params, body=None) for lab in lam_labels
    ]
    lams: List[Lam] = []
    for idx, lab in enumerate(lam_labels):
        if idx < n_halt:
            lams.append(Lam(label=lab, params=params, body=None))
            continue
        fn = Var(params[int(rng.integers(arity))])
        args = []
        for _ in range(arity):
            if rng.random() < literal_prob:
                args.append(placeholder[int(rng.integers(n_lambdas))])
            else:
                args.append(Var(params[int(rng.integers(arity))]))
        body = Call(label=next(label), fn=fn, args=tuple(args))
        lams.append(Lam(label=lab, params=params, body=body))

    # Patch placeholder references to the real lambdas (same labels): the
    # analysis resolves callees through the label registry, so a
    # placeholder literal with the right label behaves identically.
    root_args = tuple(lams[int(rng.integers(n_halt, n_lambdas))]
                      for _ in range(arity))
    dispatcher = Lam(label=next(label), params=params,
                     body=Call(label=next(label), fn=Var(params[0]),
                               args=tuple(Var(q) for q in params)))
    root = Call(label=next(label), fn=dispatcher, args=root_args)
    program = Program(root=root)
    # Register the real lambdas over the placeholder entries.
    for lam in lams:
        program.lambdas[lam.label] = lam
    return program


def funnel_program(n_payloads: int = 6, chain_len: int = 12) -> Program:
    """Reconvergent funnel — the construction that defeats kCFA-8.

    A *funnel chain* ``K_1 → K_2 → … → K_m`` of pass-through lambdas
    (``K_i = λ(v).(K_{i+1} v)``) carries a payload value; the chain's foot
    invokes the payload on itself (``K_m = λ(v).(v v)``).  Every traversal
    of the chain runs through the **same** ``m`` call labels, so once
    ``m ≥ k`` all traversals reconverge to an *identical* k-truncated
    contour at the foot — their payload bindings join, the foot's operator
    set accumulates every payload ever funneled, and each fixed-point
    round fans out over the whole accumulated set.

    Payloads re-enter the funnel with the *next* payload
    (``V_j = λ(u).(K_1 V_{j+1 mod n})``), so the operator set at the foot
    grows round by round: the per-iteration fact load swings from single
    pass-through facts (inside the chain) to ``O(n²)`` bursts (at the
    foot) — the bursty per-iteration ``N`` that Fig. 12 plots.  This is
    the truncation-induced merging at the heart of the Van Horn–Mairson
    construction, expressed in the closure-free core.
    """
    if n_payloads < 1:
        raise ValueError("need at least one payload")
    if chain_len < 2:
        raise ValueError("chain_len must be >= 2")
    label = iter(range(1, 1 << 14))

    # Payload bodies re-enter the chain head; built after the chain, so
    # pre-allocate payload labels and patch via a registry-compatible
    # trick: construct chain first with placeholder payload literals is
    # unnecessary — payloads only reference K_1, and chain lambdas only
    # reference their successor, so build the chain back to front, then
    # the payloads, then the root.
    foot = Lam(label=next(label), params=("v",),
               body=Call(label=next(label), fn=Var("v"), args=(Var("v"),)))
    chain: List[Lam] = [foot]
    for _ in range(chain_len - 1):
        nxt = chain[-1]
        chain.append(Lam(label=next(label), params=("v",),
                         body=Call(label=next(label), fn=nxt,
                                   args=(Var("v"),))))
    head = chain[-1]

    payloads: List[Lam] = []
    for j in range(n_payloads):
        payloads.append(Lam(label=next(label), params=("u",), body=None))
    # Rebuild payloads with real bodies now that labels exist (frozen
    # dataclasses: create replacements; the *labels* are what the
    # analysis resolves through the program registry).
    real_payloads: List[Lam] = []
    for j in range(n_payloads):
        successor = payloads[(j + 1) % n_payloads]
        body = Call(label=next(label), fn=head, args=(successor,))
        real_payloads.append(Lam(label=payloads[j].label, params=("u",),
                                 body=body))

    root = Call(label=next(label), fn=head, args=(real_payloads[0],))
    program = Program(root=root)
    for lam in real_payloads:
        program.lambdas[lam.label] = lam
    return program


def kcfa_worstcase(n_payloads: int = 6, chain_len: int = 12) -> Program:
    """The default Fig. 12 workload: a reconvergent funnel sized as a
    laptop-scale stand-in for the paper's kCFA-8 runs (scale substitution
    documented in DESIGN.md)."""
    return funnel_program(n_payloads, chain_len)

"""Synthetic graphs standing in for the paper's SuiteSparse inputs (§5.1).

The paper's two TC inputs differ in exactly one property that drives
Fig. 11's diverging result:

* **Graph 1** (412,148 edges) — high diameter: the fixed point needs 2,933
  iterations, each producing relatively few new paths → small per-iteration
  all-to-all loads → Bruck-friendly.
* **Graph 2** (1,014,951 edges) — low diameter: only 89 iterations, each
  producing ~10× more paths per iteration → large loads → Bruck-hostile.

The generators here control that property directly, scaled down so the
thread-based functional runtime finishes in seconds (the scale substitution
is documented in DESIGN.md): :func:`graph1` is chain-dominated (long
diameter, sparse shortcuts), :func:`graph2` is a dense random digraph
(logarithmic diameter).  Edge counts keep roughly the paper's 1:2.5 ratio.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["chain_graph", "dense_random_graph", "graph1", "graph2",
           "sequential_transitive_closure"]

Edge = Tuple[int, int]


def chain_graph(chain_length: int, n_chains: int = 1,
                extra_edges: int = 0, seed: int = 0) -> List[Edge]:
    """Disjoint directed chains plus optional random shortcut edges.

    Diameter ≈ ``chain_length`` regardless of shortcuts (shortcuts go
    *forward* a bounded distance so they cannot collapse the diameter),
    giving the many-cheap-iterations regime of the paper's Graph 1.
    """
    if chain_length < 1 or n_chains < 1:
        raise ValueError("chain_length and n_chains must be >= 1")
    edges: List[Edge] = []
    for c in range(n_chains):
        base = c * (chain_length + 1)
        edges.extend((base + i, base + i + 1) for i in range(chain_length))
    if extra_edges:
        rng = np.random.default_rng(seed)
        n_nodes = n_chains * (chain_length + 1)
        for _ in range(extra_edges):
            u = int(rng.integers(0, n_nodes - 2))
            # Short forward hop inside the same chain region.
            v = min(u + 1 + int(rng.integers(1, 4)),
                    (u // (chain_length + 1) + 1) * (chain_length + 1) - 1)
            if u != v:
                edges.append((u, v))
    return sorted(set(edges))


def dense_random_graph(n_nodes: int, n_edges: int, seed: int = 0) -> List[Edge]:
    """A dense Erdős–Rényi-style digraph: diameter ``O(log n)``, so the
    fixed point converges in a handful of heavy iterations (Graph 2)."""
    if n_nodes < 2:
        raise ValueError("n_nodes must be >= 2")
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < n_edges:
        need = n_edges - len(edges)
        u = rng.integers(0, n_nodes, size=need * 2)
        v = rng.integers(0, n_nodes, size=need * 2)
        for a, b in zip(u.tolist(), v.tolist()):
            if a != b:
                edges.add((a, b))
            if len(edges) >= n_edges:
                break
    return sorted(edges)


def graph1(scale: float = 1.0, seed: int = 1) -> List[Edge]:
    """Scaled-down Graph 1 analogue: chain-dominated, high diameter."""
    length = max(8, int(60 * scale))
    return chain_graph(length, n_chains=3, extra_edges=int(40 * scale),
                       seed=seed)


def graph2(scale: float = 1.0, seed: int = 2) -> List[Edge]:
    """Scaled-down Graph 2 analogue: dense, low diameter, ~2.5× the edges
    of :func:`graph1` at the same scale."""
    n_nodes = max(10, int(60 * scale))
    n_edges = int(500 * scale)
    return dense_random_graph(n_nodes, n_edges, seed=seed)


def sequential_transitive_closure(edges: List[Edge]) -> set:
    """Reference TC via per-source BFS (used by tests and examples)."""
    adj = {}
    for u, v in edges:
        adj.setdefault(u, []).append(v)
    closure = set()
    nodes = {u for u, _ in edges} | {v for _, v in edges}
    for src in nodes:
        seen = set()
        stack = list(adj.get(src, ()))
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(adj.get(v, ()))
        closure.update((src, v) for v in seen)
    return closure

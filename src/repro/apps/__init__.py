"""Applications (paper Section 5): transitive closure and kCFA over BPRA."""

from .figures import Fig12Data, fig11_tc_strong_scaling, fig12_kcfa
from .graphs import (
    chain_graph,
    dense_random_graph,
    graph1,
    graph2,
    sequential_transitive_closure,
)
from .transitive_closure import TCResult, run_transitive_closure, transitive_closure_rank

__all__ = [
    "chain_graph",
    "dense_random_graph",
    "graph1",
    "graph2",
    "sequential_transitive_closure",
    "run_transitive_closure",
    "transitive_closure_rank",
    "TCResult",
    "fig11_tc_strong_scaling",
    "fig12_kcfa",
    "Fig12Data",
]

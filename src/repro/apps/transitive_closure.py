"""Parallel transitive closure over BPRA (paper §5.1, Fig. 11).

Semi-naive TC as iterated relational algebra:

* ``G(y, z)`` — the edge relation, hash-partitioned by source ``y``;
* ``T(x, y)`` — the accumulating path relation, partitioned by *target*
  ``y`` so each new path lands exactly where the edges it can extend live;
* each iteration joins the newest paths ``ΔT(x, y)`` with the local edges
  ``G(y, z)`` and routes the resulting candidates ``(x, z)`` to
  ``hash(z)`` — one non-uniform all-to-all per iteration, through the
  pluggable algorithm under study.

Local compute (join probes, inserts) is charged to the simulated clock so
strong-scaling totals behave like the paper's: compute shrinks with ``P``
while communication grows, which is what makes the Bruck swap matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..bpra.fixpoint import FixpointResult, IterationRecord, run_fixpoint
from ..bpra.relation import LocalRelation, hash_owner
from ..simmpi.communicator import Communicator
from ..simmpi.executor import run_spmd
from ..simmpi.machine import LOCAL, MachineProfile

__all__ = ["TCResult", "transitive_closure_rank", "run_transitive_closure"]

Edge = Tuple[int, int]

# Per-operation local compute charges (seconds).  Roughly a hash probe /
# a set insert on the simulated machine; they make join work visible to
# the strong-scaling totals without dominating them.
_JOIN_PROBE_COST = 8.0e-8
_PRODUCE_COST = 6.0e-8


@dataclass
class TCResult:
    """Aggregated outcome of a distributed TC run."""

    nprocs: int
    algorithm: str
    closure_size: int
    iterations: int
    elapsed_seconds: float                 # simulated makespan
    comm_seconds: float                    # max-over-ranks total comm time
    per_iteration: List[Dict]              # merged Fig. 11/12 records


def transitive_closure_rank(comm: Communicator, edges: Sequence[Edge], *,
                            algorithm: str = "two_phase_bruck",
                            ) -> FixpointResult:
    """One rank's SPMD body: compute TC of ``edges`` collectively.

    Every rank receives the full edge list (deterministic input, as if
    read from shared storage) and keeps only its hash-partitioned share.
    """
    p = comm.size
    g = LocalRelation(arity=2, key_column=0)   # G(y, z) at hash(y)
    t = LocalRelation(arity=2, key_column=1)   # T(x, y) at hash(y)
    seed_delta: List[Edge] = []
    for (u, v) in edges:
        if hash_owner(u, p) == comm.rank:
            g.add((u, v))
        if hash_owner(v, p) == comm.rank:
            if t.add((u, v)):
                seed_delta.append((u, v))

    def rule(delta: List[Edge]) -> Dict[int, List[Edge]]:
        outgoing: Dict[int, List[Edge]] = {}
        produced = 0
        for (x, y) in delta:
            for (_, z) in g.matching(y):
                outgoing.setdefault(hash_owner(z, p), []).append((x, z))
                produced += 1
        comm.charge_compute(len(delta) * _JOIN_PROBE_COST
                            + produced * _PRODUCE_COST)
        return outgoing

    return run_fixpoint(comm, t, seed_delta, rule, algorithm=algorithm)


def run_transitive_closure(edges: Sequence[Edge], nprocs: int, *,
                           machine: MachineProfile = LOCAL,
                           algorithm: str = "two_phase_bruck",
                           timeout: float = 300.0) -> TCResult:
    """Launch the SPMD TC job and aggregate per-rank results.

    The returned ``per_iteration`` records carry, for every iteration, the
    max-over-ranks simulated comm time and the global max block size ``N``
    — the two series Fig. 12 plots (and Fig. 11 sums).
    """
    result = run_spmd(
        lambda comm: transitive_closure_rank(comm, edges,
                                             algorithm=algorithm),
        nprocs, machine=machine, trace=False, timeout=timeout)
    fixpoints: List[FixpointResult] = result.returns
    iterations = fixpoints[0].iterations
    if any(f.iterations != iterations for f in fixpoints):
        raise AssertionError("ranks disagree on iteration count")
    closure_size = sum(len(f.relation) for f in fixpoints)
    per_iteration: List[Dict] = []
    for i in range(iterations):
        records: List[IterationRecord] = [f.history[i] for f in fixpoints]
        per_iteration.append({
            "iteration": i + 1,
            "comm_seconds": max(r.comm_seconds for r in records),
            "max_block_bytes": records[0].max_block_bytes,
            "new_tuples": sum(r.new_tuples for r in records),
        })
    return TCResult(
        nprocs=nprocs,
        algorithm=algorithm,
        closure_size=closure_size,
        iterations=iterations,
        elapsed_seconds=result.elapsed,
        comm_seconds=max(f.total_comm_seconds for f in fixpoints),
        per_iteration=per_iteration,
    )

"""Per-figure experiment drivers for the paper's microbenchmark evaluation.

One function per figure (Figs. 2, 6, 7, 8, 9, 10, 13); each returns plain
data structures that the ``benchmarks/`` harness renders with
:mod:`repro.bench.reporting` and that the test suite asserts the paper's
qualitative shapes on.  The application figures (11, 12) live with the
applications in :mod:`repro.apps`.

All microbenchmark timings come from :mod:`repro.timing` — the analytic
engine validated bit-for-bit against the functional simulator — evaluated
over ``iterations`` distinct workload seeds and summarized as median ± MAD,
exactly the paper's protocol (§4: "minimum of 20 iterations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.selector import PerformanceModel
from ..simmpi.machine import CORI, STAMPEDE2, THETA, MachineProfile
from ..stats import Summary
from ..timing import predict_alltoallv, predict_uniform
from ..workloads.distributions import (
    BlockSizeDistribution,
    NormalBlocks,
    PowerLawBlocks,
    UniformBlocks,
    WindowedUniformBlocks,
)
from .runner import run_iterations

__all__ = [
    "FigureData",
    "UNIFORM_VARIANTS",
    "NONUNIFORM_SCHEMES",
    "fig2a_uniform_variants",
    "fig2b_phase_breakdown",
    "fig6_data_scaling",
    "fig7_weak_scaling",
    "fig8_sensitivity",
    "fig9_performance_model",
    "fig10_distributions",
    "fig13_other_machines",
]

#: Fig. 2's six variants, in the paper's naming.
UNIFORM_VARIANTS = (
    "basic_bruck",
    "basic_bruck_dt",
    "modified_bruck",
    "modified_bruck_dt",
    "zero_copy_bruck_dt",
    "zero_rotation_bruck",
)

#: Fig. 6's five schemes.  ``vendor_alltoallv`` is the stand-in for Cray's
#: MPI_Alltoallv; in this reproduction it is structurally identical to the
#: explicit spread-out implementation (the paper states vendor alltoallv is
#: spread-out based), so the two lines coincide.
NONUNIFORM_SCHEMES = (
    "padded_bruck",
    "two_phase_bruck",
    "padded_alltoall",
    "spread_out",
    "vendor_alltoallv",
)

_SCHEME_TO_ALGO = {
    "padded_bruck": "padded_bruck",
    "two_phase_bruck": "two_phase_bruck",
    "padded_alltoall": "padded_alltoall",
    "spread_out": "spread_out",
    "vendor_alltoallv": "vendor",
}


@dataclass
class FigureData:
    """One reproduced plot: named series over a shared x axis."""

    title: str
    x_header: str
    xs: List
    series: Dict[str, Dict]
    notes: str = ""

    def winner(self, x) -> str:
        """Name of the fastest series at ``x``."""
        best_name, best = None, None
        for name, pts in self.series.items():
            v = pts.get(x)
            if v is None:
                continue
            t = v.median if isinstance(v, Summary) else float(v)
            if best is None or t < best:
                best_name, best = name, t
        if best_name is None:
            raise KeyError(f"no data at x={x!r}")
        return best_name


def _predict_summary(algorithm: str, machine: MachineProfile, nprocs: int,
                     dist: BlockSizeDistribution, iterations: int,
                     base_seed: int) -> Summary:
    return run_iterations(
        lambda seed: predict_alltoallv(algorithm, machine, nprocs, dist,
                                       seed=seed).elapsed,
        iterations, base_seed)


# ----------------------------------------------------------------------
# Fig. 2 — uniform variants
# ----------------------------------------------------------------------

def fig2a_uniform_variants(machine: MachineProfile = THETA,
                           procs: Sequence[int] = (256, 512, 1024, 2048, 4096),
                           block_nbytes: int = 32) -> FigureData:
    """Fig. 2a: total time of the six uniform Bruck variants, N = 32 B."""
    series: Dict[str, Dict] = {name: {} for name in UNIFORM_VARIANTS}
    for name in UNIFORM_VARIANTS:
        for p in procs:
            series[name][p] = predict_uniform(name, machine, p,
                                              block_nbytes).total
    return FigureData(
        title=f"Fig. 2a: uniform Bruck variants, N={block_nbytes} B "
              f"({machine.name})",
        x_header="P", xs=list(procs), series=series,
        notes="Uniform exchanges are deterministic (no workload seed), so "
              "single predictions replace median-of-iterations.",
    )


def fig2b_phase_breakdown(machine: MachineProfile = THETA,
                          procs: Sequence[int] = (256, 1024, 4096),
                          block_nbytes: int = 32,
                          ) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Fig. 2b: per-phase time of the three explicit-memcpy variants.

    Returns ``{P: {variant: {phase: seconds}}}`` with phases
    ``initial_rotation`` / ``communication`` / ``final_rotation`` /
    ``index_setup``.
    """
    variants = ("basic_bruck", "modified_bruck", "zero_rotation_bruck")
    out: Dict[int, Dict[str, Dict[str, float]]] = {}
    for p in procs:
        out[p] = {}
        for name in variants:
            t = predict_uniform(name, machine, p, block_nbytes)
            out[p][name] = {
                "initial_rotation": t.initial_rotation,
                "communication": t.communication,
                "final_rotation": t.final_rotation,
                "index_setup": t.index_setup,
            }
    return out


# ----------------------------------------------------------------------
# Fig. 6 — data scaling
# ----------------------------------------------------------------------

def fig6_data_scaling(machine: MachineProfile = THETA,
                      procs: Sequence[int] = (128, 512, 1024, 4096, 8192,
                                              32768),
                      blocks: Sequence[int] = (16, 32, 64, 128, 256, 512,
                                               1024, 2048),
                      iterations: int = 5,
                      base_seed: int = 0) -> Dict[int, FigureData]:
    """Fig. 6: all five schemes over block size, one panel per P."""
    out: Dict[int, FigureData] = {}
    for p in procs:
        series: Dict[str, Dict] = {name: {} for name in NONUNIFORM_SCHEMES}
        for n in blocks:
            dist = UniformBlocks(n)
            for name in NONUNIFORM_SCHEMES:
                series[name][n] = _predict_summary(
                    _SCHEME_TO_ALGO[name], machine, p, dist, iterations,
                    base_seed)
        out[p] = FigureData(
            title=f"Fig. 6: data scaling at P={p} ({machine.name}, "
                  f"uniform block sizes)",
            x_header="N (bytes)", xs=list(blocks), series=series,
            notes="vendor_alltoallv and spread_out coincide structurally "
                  "in this reproduction (vendor alltoallv is spread-out "
                  "based).",
        )
    return out


# ----------------------------------------------------------------------
# Fig. 7 — weak scaling
# ----------------------------------------------------------------------

def fig7_weak_scaling(machine: MachineProfile = THETA,
                      block_nbytes: int = 64,
                      procs: Sequence[int] = (128, 512, 1024, 4096, 8192,
                                              16384, 32768),
                      iterations: int = 5,
                      base_seed: int = 0) -> FigureData:
    """Fig. 7: fixed max block size, growing process count."""
    dist = UniformBlocks(block_nbytes)
    series: Dict[str, Dict] = {name: {} for name in NONUNIFORM_SCHEMES}
    for p in procs:
        for name in NONUNIFORM_SCHEMES:
            series[name][p] = _predict_summary(
                _SCHEME_TO_ALGO[name], machine, p, dist, iterations,
                base_seed)
    return FigureData(
        title=f"Fig. 7: weak scaling at N={block_nbytes} B ({machine.name})",
        x_header="P", xs=list(procs), series=series,
    )


# ----------------------------------------------------------------------
# Fig. 8 — sensitivity analysis
# ----------------------------------------------------------------------

def fig8_sensitivity(machine: MachineProfile = THETA,
                     nprocs: int = 4096,
                     blocks: Sequence[int] = (16, 64, 256, 512, 1024),
                     r_values: Sequence[int] = (100, 80, 60, 40, 20),
                     iterations: int = 3,
                     base_seed: int = 0,
                     ) -> Dict[Tuple[int, int], Dict[str, Summary]]:
    """Fig. 8: windowed-uniform workloads ``(100-r)%..100% of N``.

    Returns ``{(N, r): {scheme: Summary}}`` for the three schemes the
    figure compares (vendor, two-phase, padded).
    """
    schemes = ("vendor_alltoallv", "two_phase_bruck", "padded_bruck")
    out: Dict[Tuple[int, int], Dict[str, Summary]] = {}
    for n in blocks:
        for r in r_values:
            dist = WindowedUniformBlocks(n, r)
            out[(n, r)] = {
                name: _predict_summary(_SCHEME_TO_ALGO[name], machine,
                                       nprocs, dist, iterations, base_seed)
                for name in schemes
            }
    return out


# ----------------------------------------------------------------------
# Fig. 9 — empirical performance model
# ----------------------------------------------------------------------

def fig9_performance_model(machine: MachineProfile = THETA,
                           procs: Sequence[int] = (128, 256, 512, 1024,
                                                   2048, 4096, 8192, 16384,
                                                   32768),
                           blocks: Sequence[int] = (16, 32, 64, 128, 256,
                                                    512, 1024, 2048),
                           seed: int = 0) -> PerformanceModel:
    """Fig. 9: fit the crossover frontiers from data-scaling sweeps."""
    return PerformanceModel.fit(machine, procs=procs, blocks=blocks,
                                seed=seed)


# ----------------------------------------------------------------------
# Fig. 10 — power-law and normal distributions
# ----------------------------------------------------------------------

def fig10_distributions(machine: MachineProfile = THETA,
                        procs: Sequence[int] = (4096, 8192),
                        blocks: Sequence[int] = (16, 64, 256, 1024, 2048),
                        iterations: int = 3,
                        base_seed: int = 0,
                        ) -> Dict[Tuple[str, int], FigureData]:
    """Fig. 10: the two power-law distributions and the windowed normal.

    Returns ``{(distribution_label, P): FigureData}``.
    """
    schemes = ("padded_bruck", "two_phase_bruck", "vendor_alltoallv")
    dist_makers = {
        "power_law_0.99": lambda n: PowerLawBlocks(n, base=0.99),
        "power_law_0.999": lambda n: PowerLawBlocks(n, base=0.999),
        "normal": NormalBlocks,
    }
    out: Dict[Tuple[str, int], FigureData] = {}
    for label, make in dist_makers.items():
        for p in procs:
            series: Dict[str, Dict] = {name: {} for name in schemes}
            for n in blocks:
                dist = make(n)
                for name in schemes:
                    series[name][n] = _predict_summary(
                        _SCHEME_TO_ALGO[name], machine, p, dist, iterations,
                        base_seed)
            out[(label, p)] = FigureData(
                title=f"Fig. 10: {label} distribution at P={p} "
                      f"({machine.name})",
                x_header="N (bytes)", xs=list(blocks), series=series,
            )
    return out


# ----------------------------------------------------------------------
# Fig. 13 — generality across machines
# ----------------------------------------------------------------------

def fig13_other_machines(machines: Sequence[MachineProfile] = (CORI,
                                                               STAMPEDE2),
                         block_nbytes: int = 64,
                         procs: Sequence[int] = (128, 512, 2048, 8192,
                                                 32768),
                         iterations: int = 3,
                         base_seed: int = 0) -> Dict[str, FigureData]:
    """Fig. 13: weak scaling with normal-distributed sizes on Cori and
    Stampede2 profiles."""
    schemes = ("padded_bruck", "two_phase_bruck", "vendor_alltoallv")
    dist = NormalBlocks(block_nbytes)
    out: Dict[str, FigureData] = {}
    for machine in machines:
        series: Dict[str, Dict] = {name: {} for name in schemes}
        for p in procs:
            for name in schemes:
                series[name][p] = _predict_summary(
                    _SCHEME_TO_ALGO[name], machine, p, dist, iterations,
                    base_seed)
        out[machine.name] = FigureData(
            title=f"Fig. 13: weak scaling, normal dist, N={block_nbytes} B "
                  f"({machine.name})",
            x_header="P", xs=list(procs), series=series,
        )
    return out

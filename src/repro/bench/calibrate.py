"""Machine-profile calibration against published anchor numbers.

The Theta profile shipped in :mod:`repro.simmpi.machine` was produced by
this grid search: candidate ``(o, eager_factor, congestion_procs)``
triples are scored against the paper's published numbers (crossover
ladder, N=256 win factors, and the absolute two-phase time at
(P=4096, N=512)), with ``beta`` re-anchored per candidate so the absolute
target is always met.  Keeping the tool in the library makes the
calibration reproducible and lets users fit profiles to *their own*
measured numbers (:class:`CalibrationTargets` is just data).

Run the shipped calibration with::

    python -c "from repro.bench.calibrate import calibrate; print(calibrate())"

(coarse grid ≈ a minute; widen the grids for a finer fit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..simmpi.machine import MachineProfile
from ..timing import predict_alltoallv
from ..workloads.distributions import UniformBlocks

__all__ = ["CalibrationTargets", "CalibrationResult", "score_profile",
           "calibrate", "PAPER_TARGETS"]


@dataclass(frozen=True)
class CalibrationTargets:
    """The published numbers a profile is fitted to."""

    #: {P: N*} — largest N where two-phase beats the vendor alltoallv.
    crossovers: Dict[int, int]
    #: {P: fraction} — two-phase's win over vendor at N = 256.
    win_at_256: Dict[int, float]
    #: (P, N, seconds) — one absolute anchor for beta.
    absolute_anchor: Tuple[int, int, float]
    #: candidate block sizes for the crossover search.
    blocks: Sequence[int] = (16, 32, 64, 128, 256, 512, 1024, 2048)


#: The HPDC '22 paper's Theta numbers (§4.1).
PAPER_TARGETS = CalibrationTargets(
    crossovers={4096: 1024, 8192: 512, 16384: 256, 32768: 128},
    win_at_256={512: 0.501, 1024: 0.385, 2048: 0.358, 4096: 0.308},
    absolute_anchor=(4096, 512, 91.6e-3),
)


@dataclass
class CalibrationResult:
    profile: MachineProfile
    score: float
    detail: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        m = self.profile
        return (f"score={self.score:.3f} o={m.o_send:.2e} "
                f"eager_factor={m.eager_factor} "
                f"K={m.congestion_procs:.0f} beta={m.beta:.3e}")


def _crossover(machine: MachineProfile, p: int,
               blocks: Sequence[int]) -> int:
    best = 0
    for n in blocks:
        dist = UniformBlocks(n)
        tp = predict_alltoallv("two_phase_bruck", machine, p, dist,
                               seed=1, mode="clt").elapsed
        vendor = predict_alltoallv("vendor", machine, p, dist, seed=1,
                                   mode="clt").elapsed
        if tp < vendor:
            best = n
    return best


def _win(machine: MachineProfile, p: int, n: int) -> float:
    dist = UniformBlocks(n)
    tp = predict_alltoallv("two_phase_bruck", machine, p, dist, seed=1,
                           mode="clt").elapsed
    vendor = predict_alltoallv("vendor", machine, p, dist, seed=1,
                               mode="clt").elapsed
    return 1.0 - tp / vendor


def _anchor_beta(machine: MachineProfile,
                 targets: CalibrationTargets) -> MachineProfile:
    """Rescale ``beta`` so the absolute anchor is met (one fixed-point
    step suffices: the anchored time is nearly linear in beta)."""
    p, n, t_target = targets.absolute_anchor
    t = predict_alltoallv("two_phase_bruck", machine, p, UniformBlocks(n),
                          seed=1, mode="clt").elapsed
    return machine.with_overrides(beta=machine.beta * t_target / t)


def score_profile(machine: MachineProfile,
                  targets: CalibrationTargets = PAPER_TARGETS) -> CalibrationResult:
    """Total calibration error of one profile (lower is better).

    Crossovers contribute ``|log2(measured / target)|`` each; win factors
    contribute ``|delta| / 10%`` each; the absolute anchor contributes its
    relative error.
    """
    detail: Dict[str, float] = {}
    score = 0.0
    for p, n_star in targets.crossovers.items():
        measured = max(_crossover(machine, p, targets.blocks), 8)
        err = abs(math.log2(measured / n_star))
        detail[f"crossover_p{p}"] = measured
        score += err
    for p, win in targets.win_at_256.items():
        measured = _win(machine, p, 256)
        detail[f"win256_p{p}"] = measured
        score += abs(measured - win) / 0.10
    p, n, t_target = targets.absolute_anchor
    t = predict_alltoallv("two_phase_bruck", machine, p, UniformBlocks(n),
                          seed=1, mode="clt").elapsed
    detail["anchor_seconds"] = t
    score += abs(t / t_target - 1.0)
    return CalibrationResult(machine, score, detail)


def calibrate(base: MachineProfile = None,
              targets: CalibrationTargets = PAPER_TARGETS,
              o_grid: Sequence[float] = (4e-6, 5e-6, 6e-6, 7e-6),
              eager_grid: Sequence[float] = (4.5, 5.0, 5.5),
              congestion_grid: Sequence[float] = (5000.0, 6000.0, 7000.0,
                                                  9000.0),
              ) -> CalibrationResult:
    """Grid-search the three free constants, re-anchoring beta per
    candidate; returns the best-scoring profile."""
    from ..simmpi.machine import THETA
    base = base or THETA
    best: CalibrationResult = None
    for o in o_grid:
        for r in eager_grid:
            for k in congestion_grid:
                candidate = base.with_overrides(
                    o_send=o, o_recv=o, eager_factor=r,
                    congestion_procs=k)
                candidate = _anchor_beta(candidate, targets)
                result = score_profile(candidate, targets)
                if best is None or result.score < best.score:
                    best = result
    return best

"""Iteration runner: repeat an experiment and summarize like the paper.

All of the paper's microbenchmarks run "for a minimum of 20 iterations" and
report median ± MAD.  In this reproduction an iteration re-runs the
experiment with a fresh workload seed (the simulated clock is deterministic
per seed, so re-running the same seed would produce zero spread — the
randomness that matters is the drawn block-size matrix, exactly as on a real
machine where the workload generator is reseeded per iteration).
"""

from __future__ import annotations

from typing import Callable, List

from ..stats import Summary, summarize

__all__ = ["run_iterations", "DEFAULT_ITERATIONS"]

#: The paper's iteration count.  Benchmark drivers default lower for
#: wall-clock friendliness and accept an override.
DEFAULT_ITERATIONS = 20


def run_iterations(experiment: Callable[[int], float], iterations: int,
                   base_seed: int = 0) -> Summary:
    """Run ``experiment(seed)`` for ``iterations`` distinct seeds.

    ``experiment`` returns a simulated time in seconds; the result is the
    paper's median ± MAD summary.
    """
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    values: List[float] = [
        experiment(base_seed + i) for i in range(iterations)
    ]
    return summarize(values)

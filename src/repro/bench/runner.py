"""Iteration runner: repeat an experiment and summarize like the paper.

All of the paper's microbenchmarks run "for a minimum of 20 iterations" and
report median ± MAD.  In this reproduction an iteration re-runs the
experiment with a fresh workload seed (the simulated clock is deterministic
per seed, so re-running the same seed would produce zero spread — the
randomness that matters is the drawn block-size matrix, exactly as on a real
machine where the workload generator is reseeded per iteration).
"""

from __future__ import annotations

from typing import Callable, List

from ..stats import Summary, summarize

__all__ = ["run_iterations", "run_functional_iterations",
           "DEFAULT_ITERATIONS"]

#: The paper's iteration count.  Benchmark drivers default lower for
#: wall-clock friendliness and accept an override.
DEFAULT_ITERATIONS = 20


def run_iterations(experiment: Callable[[int], float], iterations: int,
                   base_seed: int = 0) -> Summary:
    """Run ``experiment(seed)`` for ``iterations`` distinct seeds.

    ``experiment`` returns a simulated time in seconds; the result is the
    paper's median ± MAD summary.
    """
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    values: List[float] = [
        experiment(base_seed + i) for i in range(iterations)
    ]
    return summarize(values)


def run_functional_iterations(algorithm: str, nprocs: int, dist,
                              iterations: int = 3, *, machine=None,
                              base_seed: int = 0, backend: str = "coop",
                              wire: str = "phantom", **kwargs) -> Summary:
    """Iterated *functional* (simulator) runs of one registered non-uniform
    algorithm; returns the median ± MAD of the simulated makespan.

    Defaults are tuned for timing sweeps: the cooperative backend (scales
    to thousands of ranks) and the **phantom** wire mode (size-only
    envelopes — the simulated clocks are bit-identical to bytes mode, see
    ``DESIGN.md``, but the host moves no payload bytes, so large-P
    iteration loops run dramatically faster and memory-flat).  Pass
    ``wire="bytes"`` when the run should also byte-verify delivery.

    ``backend="tensor"`` evaluates each iteration on the vectorized
    whole-fabric engine (phantom wire required) — same clocks, tens of
    thousands of ranks.
    """
    from ..core.registry import get_algorithm
    from ..simmpi import ExecutionConfig, THETA, run_spmd
    from ..simmpi.tensor import TensorAlltoallv
    from ..workloads import block_size_matrix, build_vargs

    machine = THETA if machine is None else machine
    config = ExecutionConfig(machine=machine, trace=False, timeout=600.0,
                             backend=backend, wire=wire)

    if backend == "tensor":
        def experiment(seed: int) -> float:
            sizes = block_size_matrix(dist, nprocs, seed=seed)
            result = run_spmd(TensorAlltoallv(algorithm, sizes, **kwargs),
                              nprocs, config=config)
            return max(result.clocks)

        return run_iterations(experiment, iterations, base_seed=base_seed)

    fn = get_algorithm(algorithm, kind="nonuniform").fn
    fill = wire == "bytes"

    def experiment(seed: int) -> float:
        sizes = block_size_matrix(dist, nprocs, seed=seed)

        def prog(comm):
            vargs = build_vargs(comm.rank, sizes, fill=fill)
            start = comm.clock
            fn(comm, *vargs.as_tuple(), **kwargs)
            return comm.clock - start

        result = run_spmd(prog, nprocs, config=config)
        return max(result.returns)

    return run_iterations(experiment, iterations, base_seed=base_seed)

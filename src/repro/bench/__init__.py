"""Benchmark harness: iteration runner, report formatting, figure drivers,
and the machine-profile calibration tool."""

from .calibrate import (
    PAPER_TARGETS,
    CalibrationResult,
    CalibrationTargets,
    calibrate,
    score_profile,
)
from .figures import (
    NONUNIFORM_SCHEMES,
    UNIFORM_VARIANTS,
    FigureData,
    fig2a_uniform_variants,
    fig2b_phase_breakdown,
    fig6_data_scaling,
    fig7_weak_scaling,
    fig8_sensitivity,
    fig9_performance_model,
    fig10_distributions,
    fig13_other_machines,
)
from .ledger import (
    LEDGER_VERSION,
    append_record,
    append_run,
    config_fingerprint,
    read_ledger,
    run_record,
)
from .reporting import format_series_table, format_speedup, format_table
from .runner import DEFAULT_ITERATIONS, run_functional_iterations, run_iterations

__all__ = [
    "LEDGER_VERSION",
    "append_record",
    "append_run",
    "config_fingerprint",
    "read_ledger",
    "run_record",
    "CalibrationTargets",
    "CalibrationResult",
    "PAPER_TARGETS",
    "calibrate",
    "score_profile",
    "FigureData",
    "UNIFORM_VARIANTS",
    "NONUNIFORM_SCHEMES",
    "fig2a_uniform_variants",
    "fig2b_phase_breakdown",
    "fig6_data_scaling",
    "fig7_weak_scaling",
    "fig8_sensitivity",
    "fig9_performance_model",
    "fig10_distributions",
    "fig13_other_machines",
    "format_table",
    "format_series_table",
    "format_speedup",
    "run_iterations",
    "run_functional_iterations",
    "DEFAULT_ITERATIONS",
]

"""Plain-text table/series rendering for benchmark reports.

The benchmark harness prints every reproduced figure as an aligned text
table (the closest faithful analogue of the paper's plots in a terminal),
with times in milliseconds and the winner of each row marked.  These
functions are deliberately free of any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..stats import Summary

__all__ = ["format_table", "format_series_table", "format_speedup"]


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def format_table(title: str, col_header: str, row_header: str,
                 columns: Sequence, rows: Sequence,
                 cell: Mapping, winner_mark: str = "*") -> str:
    """Render ``cell[(row, col)]`` (seconds or Summary) as a table.

    The fastest column in each row is marked with ``winner_mark``.
    """
    def value_of(v) -> float:
        return v.median if isinstance(v, Summary) else float(v)

    widths = [max(len(str(c)) + 1, 12) for c in columns]
    head = f"{row_header:>12} | " + " ".join(
        f"{str(c):>{w}}" for c, w in zip(columns, widths))
    lines = [title, "-" * len(head), head, "-" * len(head)]
    for r in rows:
        vals = {}
        for c in columns:
            v = cell.get((r, c))
            if v is not None:
                vals[c] = value_of(v)
        best = min(vals.values()) if vals else None
        cells = []
        for c, w in zip(columns, widths):
            if c in vals:
                mark = winner_mark if vals[c] == best else " "
                cells.append(f"{_fmt_ms(vals[c]) + mark:>{w}}")
            else:
                cells.append(f"{'-':>{w}}")
        lines.append(f"{str(r):>12} | " + " ".join(cells))
    lines.append("-" * len(head))
    lines.append(f"(times in ms; {winner_mark} marks the row winner)")
    return "\n".join(lines)


def format_series_table(title: str, x_header: str,
                        series: Mapping[str, Mapping],
                        xs: Sequence) -> str:
    """Render one series per column over a shared x axis."""
    names = list(series)
    cell = {}
    for name in names:
        for x in xs:
            v = series[name].get(x)
            if v is not None:
                cell[(x, name)] = v
    return format_table(title, "algorithm", x_header, names, xs, cell)


def format_speedup(base_name: str, base: float, other_name: str,
                   other: float) -> str:
    """One-line comparison in the paper's phrasing ("X% faster")."""
    if other <= 0 or base <= 0:
        return f"{base_name} vs {other_name}: undefined (non-positive time)"
    if base <= other:
        pct = (1.0 - base / other) * 100.0
        return (f"{base_name} is {pct:.1f}% faster than {other_name} "
                f"({_fmt_ms(base)} vs {_fmt_ms(other)} ms)")
    pct = (1.0 - other / base) * 100.0
    return (f"{other_name} is {pct:.1f}% faster than {base_name} "
            f"({_fmt_ms(other)} vs {_fmt_ms(base)} ms)")

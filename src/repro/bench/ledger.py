"""Machine-readable run ledger: one JSON record per observed SPMD run.

Perf numbers that only ever exist as console output can't be trended,
diffed across machine-model versions, or fed to a tuner.  The ledger
fixes that: any :func:`repro.simmpi.run_spmd` call with metrics enabled
(``trace="metrics"`` / ``"full"``) and ``ExecutionConfig(ledger=path)``
appends one self-describing JSON line to ``path``:

* ``ledger_version`` — schema version of the record itself;
* ``machine_model_version`` — the cost-model revision that produced the
  numbers (:data:`repro.simmpi.machine.MACHINE_MODEL_VERSION`), so stale
  records are detectable after a model recalibration;
* ``config`` / ``config_fingerprint`` — the full execution config and a
  stable SHA-256 digest of it, for grouping runs of the same setup;
* ``metrics`` — the :class:`~repro.simmpi.metrics.RunMetrics`
  aggregates (totals, congestion maxima, wait totals, phase tables,
  fault counters — everything except the O(P^2)-able per-link map);
* ``attribution`` — the critical-path bucket totals
  (:mod:`repro.simmpi.critical_path`) when the run recorded enough to
  compute them, else ``None``.

Records are JSON Lines — append-only, greppable, loadable one by one —
and every value is a plain scalar/list/dict so any tool can consume them
without importing this package.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

from repro.simmpi.machine import MACHINE_MODEL_VERSION

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.simmpi.config import ExecutionConfig
    from repro.simmpi.executor import SPMDResult

__all__ = ["LEDGER_VERSION", "config_fingerprint", "run_record",
           "append_record", "append_run", "read_ledger", "iter_ledger",
           "query_ledger"]

#: Schema version of ledger records.  Bump when a field changes meaning;
#: adding fields is backward compatible and does not bump it.
LEDGER_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Recursively render dataclasses/tuples/dict-keys to plain JSON."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_describe(config: "ExecutionConfig") -> Dict[str, Any]:
    """The execution config as a plain JSON-able dict."""
    desc = _jsonable(config)
    desc.pop("ledger", None)  # where the record lands, not what ran
    return desc


def config_fingerprint(config: "ExecutionConfig") -> str:
    """Stable SHA-256 digest of an execution config.

    Two runs share a fingerprint iff their machine profile, backend,
    wire, trace mode, fault plan/seed, failure policy and reliability
    transport all match — the grouping key for trend lines.  The
    ``ledger`` path itself is excluded (writing the same run to a
    different file must not change its identity).
    """
    canonical = json.dumps(config_describe(config), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _metrics_summary(metrics) -> Dict[str, Any]:
    """RunMetrics aggregates minus the potentially O(P^2) link map."""
    return {
        "nprocs": metrics.nprocs,
        "total_messages": metrics.total_messages,
        "total_bytes": metrics.total_bytes,
        "max_message_nbytes": metrics.max_message_nbytes,
        "message_size_buckets": _jsonable(metrics.message_size_buckets),
        "max_in_flight": metrics.max_in_flight,
        "max_in_flight_per_link": metrics.max_in_flight_per_link,
        "links_used": len(metrics.per_link),
        "busiest_links": [
            {"link": list(link), "messages": m, "nbytes": b,
             "max_in_flight": mif}
            for link, (m, b, mif) in metrics.busiest_links(limit=5)],
        "steps": len(metrics.per_step),
        "queue_wait_total": metrics.queue_wait_total,
        "queue_wait_max": metrics.queue_wait_max,
        "recv_wait_total": metrics.recv_wait_total,
        "recv_wait_max": metrics.recv_wait_max,
        "phase_times": _jsonable(metrics.phase_times),
        "collective_times": _jsonable(metrics.collective_times),
        "fault_counts": _jsonable(metrics.fault_counts),
        "injected_delay_total": metrics.injected_delay_total,
    }


def run_record(result: "SPMDResult", *,
               algorithm: Optional[str] = None,
               distribution: Optional[str] = None,
               extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build one ledger record for a completed run.

    ``algorithm``/``distribution`` label what the workload was — the
    config only describes *how* it executed.  ``extra`` merges arbitrary
    caller keys (e.g. a benchmark name) into the record top level.
    """
    cfg = result.config
    record: Dict[str, Any] = {
        "ledger_version": LEDGER_VERSION,
        "machine_model_version": MACHINE_MODEL_VERSION,
        "machine": result.machine.name,
        "nprocs": result.nprocs,
        "algorithm": algorithm,
        "distribution": distribution,
        "elapsed_s": result.elapsed,
        "degraded_ranks": list(result.degraded_ranks),
    }
    if cfg is not None:
        record["backend"] = cfg.backend
        record["wire"] = cfg.wire
        record["trace"] = cfg.trace
        record["config_fingerprint"] = config_fingerprint(cfg)
        record["config"] = config_describe(cfg)
    record["metrics"] = (_metrics_summary(result.metrics)
                        if result.metrics is not None else None)
    try:
        cp = result.critical_path()
    except ValueError:
        record["attribution"] = None
    else:
        record["attribution"] = {
            "buckets": cp.bucket_totals(),
            "granularity": cp.granularity,
            "injected_delay": cp.injected_delay,
            "path_segments": len(cp.path),
            "path_ranks": cp.path_ranks(),
            "slowest_rank": cp.slowest().rank,
        }
    if extra:
        record.update(extra)
    return record


def append_record(path: str, record: Dict[str, Any]) -> None:
    """Append one record to the JSONL ledger at ``path`` (creating it)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")


def append_run(path: str, result: "SPMDResult", **labels: Any) -> Dict[str, Any]:
    """Record one run into the ledger; returns the appended record."""
    record = run_record(result, **labels)
    append_record(path, record)
    return record


def iter_ledger(path: str) -> Iterator[Dict[str, Any]]:
    """Yield ledger records in append order (empty if no file).

    A malformed *final* line is skipped silently: it is the signature of
    a run killed mid-append, and dropping it loses only the run that
    already failed.  A malformed line with valid records *after* it means
    real corruption and still raises ``ValueError``.
    """
    if not os.path.exists(path):
        return
    pending: Optional[Exception] = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if pending is not None:
                raise ValueError(
                    f"{path}: malformed ledger record on a non-final "
                    f"line ({pending})")
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                pending = ValueError(f"line {lineno}: {exc}")


def read_ledger(path: str) -> List[Dict[str, Any]]:
    """All records of the JSONL ledger at ``path`` (empty if absent)."""
    return list(iter_ledger(path))


#: Query keys that match a top-level record field of the same name.
_QUERY_FIELDS = ("algorithm", "distribution", "machine", "nprocs",
                 "backend", "wire", "config_fingerprint", "radix")


def query_ledger(path: str, *, predicate=None,
                 **where: Any) -> List[Dict[str, Any]]:
    """Records matching every given field filter, in append order.

    Keyword filters compare against the record's top-level field of the
    same name (supported: ``algorithm``, ``distribution``, ``machine``,
    ``nprocs``, ``backend``, ``wire``, ``config_fingerprint``,
    ``radix``); records missing the field never match.  ``predicate``,
    when given, is an extra ``record -> bool`` applied after the field
    filters.  Tolerates a truncated final line like :func:`iter_ledger`.
    """
    unknown = set(where) - set(_QUERY_FIELDS)
    if unknown:
        raise TypeError(
            f"unknown query fields {sorted(unknown)}; "
            f"known: {list(_QUERY_FIELDS)}")
    out: List[Dict[str, Any]] = []
    for rec in iter_ledger(path):
        if any(k not in rec or rec[k] != v for k, v in where.items()):
            continue
        if predicate is not None and not predicate(rec):
            continue
        out.append(rec)
    return out

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``predict``    analytic simulated time of one alltoallv configuration
``run``        functional simulator run with byte verification
``trace``      functional run exported as a Chrome/Perfetto timeline
``recommend``  the Fig. 9 advisor: which algorithm for (P, N)?
``profiles``   list the machine profiles and their constants
``sweep``      a data-scaling sweep (one Fig. 6 panel) as a table

Examples
--------
::

    python -m repro predict -a two_phase_bruck -p 8192 -n 256
    python -m repro run -a padded_bruck -p 32 -n 64 --machine local
    python -m repro run -a two_phase_bruck -p 1024 -n 8 --backend coop
    python -m repro run -a sloav -p 32768 -n 64 --backend tensor \\
        --wire phantom --dist const
    python -m repro trace --algorithm two_phase_bruck --nprocs 64 \\
        --out trace.json --critical-path
    python -m repro trace -a two_phase_bruck -p 32768 -n 64 --dist const \\
        --backend tensor --level metrics
    python -m repro run -a two_phase_bruck -p 1024 -n 512 \\
        --backend tensor --wire phantom --dist const --radix auto \\
        --ledger runs.jsonl
    python -m repro recommend -p 350 -n 800
    python -m repro sweep -p 4096
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .bench import fig6_data_scaling, format_series_table
from .core import PerformanceModel, alltoallv
from .core.registry import list_algorithms
from .simmpi import (
    BACKENDS,
    KNOWN_FAULT_CLAUSES,
    ON_FAULT_POLICIES,
    PROFILES,
    WIRE_MODES,
    ExecutionConfig,
    SimMPIError,
    TensorAlltoallv,
    get_profile,
    run_spmd,
)
from .timing import predict_alltoallv
from .workloads import (
    block_size_matrix,
    build_vargs,
    distribution_by_name,
    verify_recv,
)

ALGORITHM_CHOICES = list_algorithms("nonuniform")


def _radix_arg(value: str):
    """``--radix`` argument: a digit base >= 2, or ``auto`` (run only)."""
    if value == "auto":
        return "auto"
    try:
        radix = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"radix must be an integer >= 2 or 'auto', got {value!r}")
    if radix < 2:
        raise argparse.ArgumentTypeError(
            f"radix must be >= 2, got {radix}")
    return radix


def _check_radix_capable(algorithm: str, radix) -> Optional[str]:
    from .core.registry import get_algorithm, radix_algorithms
    if radix in (2, "auto"):
        return None
    if not get_algorithm(algorithm, "nonuniform").supports_radix:
        return (f"algorithm {algorithm!r} does not support --radix "
                f"{radix}; radix-capable: "
                f"{', '.join(radix_algorithms('nonuniform'))}")
    return None


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("-p", "--nprocs", type=int, required=True,
                   help="number of ranks")
    p.add_argument("-n", "--max-block", type=int, required=True,
                   help="maximum block size N in bytes")
    p.add_argument("--dist", default="uniform",
                   choices=["uniform", "normal", "power_law", "const"],
                   help="block-size distribution (default: uniform); "
                        "'const' sends exactly N bytes to every peer — "
                        "the only form that scales to 32K ranks (no "
                        "P x P matrix is materialized)")
    p.add_argument("--machine", default="theta", choices=sorted(PROFILES),
                   help="machine profile (default: theta)")
    p.add_argument("--ppn", type=int, default=None, metavar="R",
                   help="ranks per node (two-level hierarchical machine "
                        "model: intra-node messages use the cheaper "
                        "intra-tier constants and pay no network "
                        "congestion); default: the profile's own ppn "
                        "(1 = flat)")
    p.add_argument("--seed", type=int, default=0)


def _resolve_machine(args: argparse.Namespace):
    machine = get_profile(args.machine)
    ppn = getattr(args, "ppn", None)
    if ppn is not None:
        machine = machine.with_overrides(ppn=ppn)
    return machine


def cmd_predict(args: argparse.Namespace) -> int:
    if args.dist == "const":
        print("error: the analytic predictor takes a distribution; "
              "use --dist uniform/normal/power_law", file=sys.stderr)
        return 2
    error = _check_radix_capable(args.algorithm, args.radix)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    machine = _resolve_machine(args)
    dist = distribution_by_name(args.dist, args.max_block)
    result = predict_alltoallv(args.algorithm, machine, args.nprocs, dist,
                               seed=args.seed, radix=args.radix)
    radix_note = f", radix={args.radix}" if args.radix != 2 else ""
    print(f"{result.algorithm} at P={args.nprocs}, N={args.max_block} "
          f"({args.dist}, {machine.name}, {result.mode} mode"
          f"{radix_note}): "
          f"{result.elapsed * 1e3:.4f} simulated ms")
    return 0


def _check_backend_limits(backend: str, nprocs: int,
                          dist: str) -> Optional[str]:
    """Per-backend practical rank caps for functional (simulator) runs."""
    if backend == "threads" and nprocs > 256:
        return ("functional runs on the thread backend are practical up "
                "to 256 ranks; pass --backend coop for thousands of "
                "ranks, --backend tensor for tens of thousands, or use "
                "`predict`")
    if backend == "coop" and nprocs > 4096:
        return ("functional runs are practical up to 4096 ranks even on "
                "the coop backend; pass --backend tensor (with --wire "
                "phantom) beyond that")
    if backend == "tensor" and dist != "const" and nprocs > 8192:
        return ("a sampled P x P size matrix above 8192 ranks does not "
                "fit in memory; pass --dist const for paper-scale runs")
    return None


def cmd_run(args: argparse.Namespace) -> int:
    error = (_check_backend_limits(args.backend, args.nprocs, args.dist)
             or _check_radix_capable(args.algorithm, args.radix))
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    machine = _resolve_machine(args)
    if args.radix == "auto":
        from .core.tuner import AutoTuner
        tuner = AutoTuner(machine, args.ledger)
        decision = tuner.decide(args.nprocs, args.max_block,
                                algorithm=args.algorithm)
        radix = decision.radix
        if decision.source == "ledger":
            print(f"auto-tuner: radix {radix} from {decision.samples} "
                  f"ledger runs (mean {decision.expected_s * 1e3:.4f} ms)",
                  file=sys.stderr)
        else:
            print(f"auto-tuner: radix {radix} from the analytic model "
                  f"(no warm ledger cell for this (P, N))",
                  file=sys.stderr)
    else:
        radix = args.radix
    phantom = args.wire == "phantom"
    # Per-event traces at thousands of ranks are pure overhead here;
    # aggregate metrics keep large-P runs fast.  The tensor backend
    # records vectorized aggregates at any P.
    if args.backend == "tensor":
        trace = "metrics"
    else:
        trace = "metrics" if args.nprocs > 256 else True
    try:
        config = ExecutionConfig(machine=machine, trace=trace,
                                 timeout=600.0, backend=args.backend,
                                 wire=args.wire, fault_plan=args.faults,
                                 fault_seed=args.fault_seed,
                                 on_fault=args.on_fault,
                                 reliability=args.reliability,
                                 ledger=args.ledger)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.dist == "const":
        sizes = None
    else:
        dist = distribution_by_name(args.dist, args.max_block)
        sizes = block_size_matrix(dist, args.nprocs, seed=args.seed)

    byzantine_plan = (config.fault_plan is not None and any(
        r.kind in ("corrupt", "forge") for r in config.fault_plan.rules))
    verified_transport = (config.reliability is not None
                          and config.reliability.verify)
    if args.backend == "tensor":
        prog = TensorAlltoallv(
            args.algorithm,
            args.max_block if sizes is None else sizes,
            radix=radix)
        verify = False
    else:
        if sizes is None:
            sizes = np.full((args.nprocs, args.nprocs), args.max_block,
                            dtype=np.int64)
        # Byte verification assumes exactly-once, untampered delivery.
        # It holds on a clean fabric and under the retry transport —
        # unless the plan injects corrupt/forge, in which case only the
        # verify tier restores byte-exactness.  Degrade mode legitimately
        # zero-fills excised ranks' blocks, and fail-fast plans error
        # out before verification matters.
        verify = not phantom and (
            config.fault_plan is None
            or (args.on_fault == "retry"
                and (not byzantine_plan or verified_transport)))

        def prog(comm):
            vargs = build_vargs(comm.rank, sizes, fill=not phantom)
            start = comm.clock
            alltoallv(comm, *vargs.as_tuple(), algorithm=args.algorithm,
                      radix=radix)
            if verify:
                verify_recv(comm.rank, sizes, vargs.recvbuf)
            return comm.clock - start

        # Workload labels for the run ledger (tensor specs already
        # carry .algorithm/.radix/.max_block; the closure needs
        # stamping).
        prog.radix = radix
        prog.max_block = args.max_block
    prog.algorithm = args.algorithm
    prog.distribution = args.dist

    try:
        result = run_spmd(prog, args.nprocs, config=config)
    except (SimMPIError, ValueError) as exc:
        print(f"run failed with {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    if verify:
        verified = "delivery byte-verified on every rank"
    elif phantom:
        verified = "buffers unverified (phantom wire: size-only transport)"
    elif byzantine_plan and not verified_transport:
        verified = ("buffers unverified (corrupt/forge injected without "
                    "--reliability verify: Byzantine delivery possible)")
    else:
        verified = "buffers unverified (faults injected without retry)"
    elapsed = max(r for r in result.returns if r is not None) \
        if args.backend != "tensor" else max(result.clocks)
    radix_note = f", radix={radix}" if radix != 2 else ""
    print(f"{args.algorithm} at P={args.nprocs}, N={args.max_block} "
          f"({args.dist}, {machine.name}, {args.backend} backend, "
          f"{args.wire} wire{radix_note}): "
          f"{elapsed * 1e3:.4f} simulated ms, "
          f"{result.total_messages} messages, {result.total_bytes} bytes "
          f"on the wire; {verified}")
    if result.metrics is not None and result.metrics.fault_counts:
        counts = ", ".join(f"{k}={v}" for k, v in
                           sorted(result.metrics.fault_counts.items()))
        print(f"injected faults: {counts}")
    if result.degraded_ranks:
        print(f"degraded ranks (excised by crashes or convicted by the "
              f"verified transport): {result.degraded_ranks}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    events_on = args.level in ("full", "events")
    # Only *per-event* traces carry the O(messages) recording cost that
    # makes large P impractical; aggregate metrics are bounded and run
    # at any P the chosen backend reaches (32K on tensor).
    if events_on and args.nprocs > 256:
        print("error: per-event traced runs are practical up to 256 ranks; "
              "use --level metrics (with --backend coop or tensor) for "
              "large-P aggregate observability", file=sys.stderr)
        return 2
    if args.backend == "threads" and args.nprocs > 256:
        print("error: the thread backend is practical up to 256 ranks; "
              "pass --backend coop or tensor", file=sys.stderr)
        return 2
    if args.backend == "tensor" and events_on:
        print("error: the tensor backend records no per-event traces; "
              "pass --level metrics", file=sys.stderr)
        return 2
    if args.out and not events_on:
        print("error: the Chrome/Perfetto export needs per-event traces; "
              "drop --out or use --level full/events", file=sys.stderr)
        return 2
    if args.dist == "const" and args.backend != "tensor":
        print("error: --dist const is the tensor backend's scale form; "
              "pass --backend tensor (or pick a sampled distribution)",
              file=sys.stderr)
        return 2
    error = _check_backend_limits(args.backend, args.nprocs, args.dist)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    machine = _resolve_machine(args)
    trace = True if args.level == "full" else args.level
    # Event-level runs keep the byte wire (and verification) of the
    # original trace command; metrics-level runs go phantom so large P
    # doesn't move gigabytes of host memory for identical clocks.
    wire = "bytes" if events_on and args.backend != "tensor" else "phantom"
    config = ExecutionConfig(machine=machine, trace=trace,
                             backend=args.backend, wire=wire,
                             fault_plan=args.faults,
                             fault_seed=args.fault_seed,
                             ledger=args.ledger)

    if args.backend == "tensor":
        if args.dist == "const":
            sizes = args.max_block
        else:
            dist = distribution_by_name(args.dist, args.max_block)
            sizes = block_size_matrix(dist, args.nprocs, seed=args.seed)
        prog = TensorAlltoallv(args.algorithm, sizes)
    else:
        dist = distribution_by_name(args.dist, args.max_block)
        sizes = block_size_matrix(dist, args.nprocs, seed=args.seed)
        fill = wire == "bytes"
        clean = args.faults is None

        def prog(comm):
            vargs = build_vargs(comm.rank, sizes, fill=fill)
            alltoallv(comm, *vargs.as_tuple(), algorithm=args.algorithm)
            if fill and clean:
                verify_recv(comm.rank, sizes, vargs.recvbuf)

    # Workload labels for the run ledger (tensor specs already carry
    # .algorithm; the closure needs stamping).
    prog.algorithm = args.algorithm
    prog.distribution = args.dist

    try:
        result = run_spmd(prog, args.nprocs, config=config)
    except (SimMPIError, ValueError) as exc:
        print(f"run failed with {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    print(result.summary(
        title=f"{args.algorithm} at P={args.nprocs}, N={args.max_block} "
              f"({args.dist}, {machine.name}, {args.backend} backend):"))
    if args.critical_path:
        try:
            print()
            print(result.critical_path().format())
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.out:
        result.export_chrome_trace(args.out,
                                   critical_path=args.critical_path)
        print(f"timeline written to {args.out} — load it in "
              f"chrome://tracing or https://ui.perfetto.dev")
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    machine = get_profile(args.machine)
    print(f"fitting the empirical model on {machine.name}...",
          file=sys.stderr)
    model = PerformanceModel.fit(machine)
    choice, radix = model.recommend_radix(args.nprocs, args.max_block)
    radix_note = f" (radix {radix})" if radix != 2 else ""
    print(f"P={args.nprocs}, N={args.max_block} -> {choice}{radix_note}")
    print(f"(two-phase wins up to N≈"
          f"{model.two_phase_threshold(args.nprocs):.0f} at this P; "
          f"padded up to N≈{model.padded_threshold(args.nprocs):.0f})")
    if args.ledger:
        from .core.tuner import AutoTuner
        tuner = AutoTuner(machine, args.ledger, model=model)
        d = tuner.decide(args.nprocs, args.max_block)
        extra = (f", mean {d.expected_s * 1e3:.4f} ms over "
                 f"{d.samples} runs" if d.source == "ledger" else "")
        print(f"ledger: {d.algorithm} radix {d.radix} "
              f"(source={d.source}{extra})")
    return 0


def cmd_profiles(_args: argparse.Namespace) -> int:
    for name in sorted(PROFILES):
        m = PROFILES[name]
        print(f"{name:>10}: alpha={m.alpha * 1e6:.1f}us "
              f"beta={1 / m.beta / 1e6:.0f}MB/s "
              f"o={m.o_send * 1e6:.1f}/{m.o_recv * 1e6:.1f}us "
              f"eager<= {m.eager_threshold}B x{m.eager_factor} "
              f"congestion K={m.congestion_procs:.0f}")
        print(f"{'':>10}  ppn={m.ppn} "
              f"intra: alpha={m.alpha_intra * 1e6:.2f}us "
              f"beta={1 / m.beta_intra / 1e6:.0f}MB/s "
              f"o={m.o_send_intra * 1e6:.2f}/{m.o_recv_intra * 1e6:.2f}us "
              f"x{m.eager_factor_intra} (no congestion)")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    out = fig6_data_scaling(machine=get_profile(args.machine),
                            procs=(args.nprocs,),
                            iterations=args.iterations)
    fd = out[args.nprocs]
    print(format_series_table(fd.title, fd.x_header, fd.series, fd.xs))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Bruck non-uniform all-to-all reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("predict", help="analytic simulated time")
    p.add_argument("-a", "--algorithm", required=True,
                   choices=ALGORITHM_CHOICES)
    _add_common(p)
    p.add_argument("--radix", type=_radix_arg, default=2, metavar="R",
                   help="digit base of the Bruck schedule (default: 2; "
                        "radix-capable algorithms only)")
    p.set_defaults(fn=cmd_predict)

    p = sub.add_parser("run", help="functional simulator run")
    p.add_argument("-a", "--algorithm", required=True,
                   choices=ALGORITHM_CHOICES)
    _add_common(p)
    p.add_argument("--backend", default="threads", choices=BACKENDS,
                   help="executor backend: threads (default, <= 256 "
                        "ranks), coop (cooperative scheduler, thousands "
                        "of ranks), or tensor (vectorized whole-fabric "
                        "engine, tens of thousands of ranks; requires "
                        "--wire phantom)")
    p.add_argument("--wire", default="bytes", choices=WIRE_MODES,
                   help="payload transport: bytes (default; real data, "
                        "byte-verified) or phantom (size-only envelopes — "
                        "identical simulated clocks, no data movement, "
                        "no verification)")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="fault-plan spec, ';'-separated clauses drawn "
                        f"from {{{', '.join(KNOWN_FAULT_CLAUSES)}}}, e.g. "
                        "'drop:p=0.02;delay:d=50us,jitter=20us;"
                        "corrupt:p=0.05;forge:p=0.02;"
                        "crash:rank=3,step=40;straggler:ranks=0:3,factor=4'")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the fault engine's per-message RNG "
                        "(default: 0); same (plan, seed) => bit-identical "
                        "fault decisions on every backend")
    p.add_argument("--on-fault", default="fail-fast",
                   choices=ON_FAULT_POLICIES,
                   help="failure policy: fail-fast (typed error), retry "
                        "(reliable transport: retransmit + dedup + "
                        "reassemble), or degrade (excise crashed ranks, "
                        "survivors complete)")
    p.add_argument("--reliability", default=None,
                   choices=["none", "retry", "verify"],
                   help="transport tier: none (lossy wire), retry (acked "
                        "retransmission; implied by --on-fault retry), or "
                        "verify (retry plus per-message checksum + auth "
                        "tag — detects corrupt/forge injections)")
    p.add_argument("--ledger", default=None, metavar="PATH",
                   help="append one structured JSON record of this run "
                        "to the JSONL ledger at PATH (runs recording "
                        "metrics only)")
    p.add_argument("--radix", type=_radix_arg, default=2, metavar="R",
                   help="digit base of the Bruck schedule: an integer "
                        ">= 2, or 'auto' to let the ledger-driven "
                        "auto-tuner pick (warm: best observed mean for "
                        "this (P, N-band); cold: the analytic closed "
                        "form)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "trace", help="observed functional run: summary, critical path, "
                      "Chrome/Perfetto timeline")
    p.add_argument("-a", "--algorithm", default="two_phase_bruck",
                   choices=ALGORITHM_CHOICES)
    p.add_argument("-p", "--nprocs", type=int, required=True,
                   help="number of ranks")
    p.add_argument("-n", "--max-block", type=int, default=64,
                   help="maximum block size N in bytes (default: 64)")
    p.add_argument("--dist", default="uniform",
                   choices=["uniform", "normal", "power_law", "const"],
                   help="block-size distribution (default: uniform); "
                        "'const' is the tensor backend's paper-scale "
                        "form (no P x P matrix)")
    p.add_argument("--machine", default="theta", choices=sorted(PROFILES))
    p.add_argument("--ppn", type=int, default=None, metavar="R",
                   help="ranks per node (hierarchical machine model)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", default="threads", choices=BACKENDS,
                   help="executor backend (default: threads); metrics-"
                        "level tracing works at any P coop/tensor reach")
    p.add_argument("--level", default="full",
                   choices=["full", "events", "metrics"],
                   help="observability level: full (events + metrics, "
                        "<= 256 ranks), events (per-event traces only, "
                        "<= 256 ranks), metrics (aggregates only — any "
                        "P, the only level the tensor backend records)")
    p.add_argument("--critical-path", action="store_true",
                   help="print the critical-path walk and per-rank "
                        "makespan attribution (and highlight the path "
                        "in the --out timeline)")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="fault-plan spec (same grammar as `run --faults`)")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--ledger", default=None, metavar="PATH",
                   help="append one structured JSON record of this run "
                        "to the JSONL ledger at PATH")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the trace-event JSON here (needs --level "
                        "full/events; omit to print the summary only)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("recommend", help="Fig. 9 advisor")
    p.add_argument("-p", "--nprocs", type=int, required=True)
    p.add_argument("-n", "--max-block", type=int, required=True)
    p.add_argument("--machine", default="theta", choices=sorted(PROFILES))
    p.add_argument("--ledger", default=None, metavar="PATH",
                   help="also report what the ledger-driven auto-tuner "
                        "would pick from the observed runs at PATH")
    p.set_defaults(fn=cmd_recommend)

    p = sub.add_parser("profiles", help="list machine profiles")
    p.set_defaults(fn=cmd_profiles)

    p = sub.add_parser("sweep", help="data-scaling sweep at one P")
    p.add_argument("-p", "--nprocs", type=int, required=True)
    p.add_argument("--machine", default="theta", choices=sorted(PROFILES))
    p.add_argument("--iterations", type=int, default=3)
    p.set_defaults(fn=cmd_sweep)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "predict" and args.algorithm == "sloav":
        print("error: sloav has no analytic predictor; use `run`",
              file=sys.stderr)
        return 2
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

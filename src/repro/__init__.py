"""repro — reproduction of "Optimizing the Bruck Algorithm for Non-uniform
All-to-all Communication" (Fan et al., HPDC '22).

Layers (see README.md / DESIGN.md):

* :mod:`repro.simmpi` — deterministic simulated MPI runtime (thread-per-
  rank SPMD, LogGP-style cost model, machine profiles).
* :mod:`repro.core` — the paper's algorithms: six uniform Bruck variants,
  padded Bruck, two-phase Bruck, baselines, the Eq. (1)-(3) cost model and
  the Fig. 9 empirical selector.
* :mod:`repro.timing` — analytic timing engine (bit-exact vs. the
  simulator at small P; CLT-scaled to 32K ranks).
* :mod:`repro.workloads` — the paper's block-size distributions.
* :mod:`repro.bpra` / :mod:`repro.apps` — balanced parallel relational
  algebra and the two applications (transitive closure, kCFA).
* :mod:`repro.bench` — per-figure benchmark drivers and reporting.

Quick start::

    import numpy as np
    from repro import run_spmd, alltoallv, THETA

    def program(comm):
        p, r = comm.size, comm.rank
        sendcounts = np.arange(1, p + 1, dtype=np.int64) * (r + 1)
        sdispls = np.concatenate([[0], np.cumsum(sendcounts)[:-1]])
        sendbuf = np.zeros(int(sendcounts.sum()), dtype=np.uint8)
        recvcounts = np.array([(j + 1) * (r + 1) for j in range(p)],
                              dtype=np.int64)  # what each peer sends us
        ...
        alltoallv(comm, sendbuf, sendcounts, sdispls,
                  recvbuf, recvcounts, rdispls,
                  algorithm="two_phase_bruck")

    run_spmd(program, nprocs=16, machine=THETA)
"""

from .core import (
    PerformanceModel,
    alltoall,
    alltoallv,
    basic_bruck,
    crossover_block_size,
    modified_bruck,
    padded_alltoall,
    padded_bruck,
    padded_beats_two_phase,
    padded_bruck_time,
    spread_out,
    spread_out_v,
    two_phase_bruck,
    two_phase_bruck_time,
    zero_rotation_bruck,
)
from .simmpi import (
    CORI,
    LOCAL,
    PROFILES,
    STAMPEDE2,
    THETA,
    Communicator,
    MachineProfile,
    SPMDResult,
    get_profile,
    run_spmd,
)
from .timing import predict_alltoallv, predict_uniform

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "run_spmd",
    "SPMDResult",
    "Communicator",
    "MachineProfile",
    "get_profile",
    "PROFILES",
    "THETA",
    "CORI",
    "STAMPEDE2",
    "LOCAL",
    "alltoall",
    "alltoallv",
    "basic_bruck",
    "modified_bruck",
    "zero_rotation_bruck",
    "spread_out",
    "padded_bruck",
    "padded_alltoall",
    "two_phase_bruck",
    "spread_out_v",
    "PerformanceModel",
    "padded_bruck_time",
    "two_phase_bruck_time",
    "padded_beats_two_phase",
    "crossover_block_size",
    "predict_alltoallv",
    "predict_uniform",
]


def __getattr__(name: str):
    # One-release compatibility stubs for the removed alias dicts; warn
    # here (not via repro.core's stub — the extra delegation frame would
    # make stacklevel=2 point inside the library, not at the caller).
    if name in ("UNIFORM_ALGORITHMS", "NONUNIFORM_ALGORITHMS"):
        import warnings

        kind = "uniform" if name == "UNIFORM_ALGORITHMS" else "nonuniform"
        warnings.warn(
            f"{name} is deprecated; use repro.core.registry."
            f"list_algorithms({kind!r}) / get_algorithm(name, {kind!r}) "
            "instead", DeprecationWarning, stacklevel=2)
        from .core.registry import deprecated_alias_dict

        return deprecated_alias_dict(kind)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

"""Statistics helpers used across benchmarks and the timing engine.

The paper reports the **median** of 20 iterations with the **median
absolute deviation** (MAD) as error bars [Howell 2005]; these helpers
implement exactly that, plus the order-statistics utilities the CLT timing
mode relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["median", "mad", "Summary", "summarize", "max_order_statistic_quantile"]


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("median of empty sequence")
    return float(np.median(arr))


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation: ``median(|x - median(x)|)``.

    The paper's error-bar statistic (robust to the occasional slow
    iteration that plagues shared-network measurements).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("mad of empty sequence")
    med = np.median(arr)
    return float(np.median(np.abs(arr - med)))


@dataclass(frozen=True)
class Summary:
    """Median ± MAD over a set of measurement iterations."""

    median: float
    mad: float
    iterations: int
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (f"{self.median:.6g} ± {self.mad:.2g} "
                f"(n={self.iterations}, range [{self.minimum:.6g}, "
                f"{self.maximum:.6g}])")


def summarize(values: Sequence[float]) -> Summary:
    """Summarize measurement iterations the way the paper reports them."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("summarize of empty sequence")
    return Summary(
        median=float(np.median(arr)),
        mad=mad(arr),
        iterations=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def max_order_statistic_quantile(count: int, quantile: float = 0.5) -> float:
    """The base-distribution quantile whose ``count``-sample maximum sits at
    ``quantile``: solves ``u**count == quantile`` for ``u``.

    Used to approximate the global maximum block size over ``P**2`` iid
    draws without materializing them (CLT timing mode).
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if not 0 < quantile < 1:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    return math.exp(math.log(quantile) / count)
